//! Aspects written as XML documents — the paper's §7 future work.
//!
//! The paper closes asking *"how aspect-oriented languages can be embedded
//! in web pages and web applications"*. navsep's answer: the aspect language
//! itself is an XML vocabulary, so a site can carry its cross-cutting
//! concerns as just another separated document (`aspects.xml`):
//!
//! ```xml
//! <aspects>
//!   <aspect name="banner" precedence="5">
//!     <rule pointcut='element("body")' position="prepend">
//!       <div class="banner">Museum of navsep</div>
//!     </rule>
//!   </aspect>
//! </aspects>
//! ```
//!
//! Rule content is literal XML, grafted at the advice position; a `text`
//! attribute may be used instead for plain-text advice.

use crate::advice::AdvicePosition;
use crate::aspect::Aspect;
use crate::error::ParsePointcutError;
use crate::pointcut::Pointcut;
use navsep_xml::{Document, ElementBuilder, NodeId, NodeKind};
use std::error::Error as StdError;
use std::fmt;

/// Failure to load an aspects document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AspectSpecError {
    /// The document is not an `<aspects>` of `<aspect>` of `<rule>`.
    InvalidStructure(String),
    /// A `pointcut` attribute failed to parse.
    Pointcut(ParsePointcutError),
    /// A `position` attribute had an unknown value.
    InvalidPosition(String),
    /// A `precedence` attribute was not an integer.
    InvalidPrecedence(String),
}

impl fmt::Display for AspectSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspectSpecError::InvalidStructure(m) => write!(f, "invalid aspects document: {m}"),
            AspectSpecError::Pointcut(e) => write!(f, "{e}"),
            AspectSpecError::InvalidPosition(p) => write!(f, "invalid advice position {p:?}"),
            AspectSpecError::InvalidPrecedence(p) => write!(f, "invalid precedence {p:?}"),
        }
    }
}

impl StdError for AspectSpecError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AspectSpecError::Pointcut(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParsePointcutError> for AspectSpecError {
    fn from(e: ParsePointcutError) -> Self {
        AspectSpecError::Pointcut(e)
    }
}

fn parse_position(text: &str) -> Result<AdvicePosition, AspectSpecError> {
    match text {
        "before" => Ok(AdvicePosition::Before),
        "after" => Ok(AdvicePosition::After),
        "prepend" => Ok(AdvicePosition::Prepend),
        "append" => Ok(AdvicePosition::Append),
        "replace-content" => Ok(AdvicePosition::ReplaceContent),
        other => Err(AspectSpecError::InvalidPosition(other.to_string())),
    }
}

/// Converts a DOM subtree back into an [`ElementBuilder`] fragment.
fn element_to_builder(doc: &Document, el: NodeId) -> ElementBuilder {
    let name = doc.name(el).expect("caller passes elements").clone();
    let mut b = ElementBuilder::new(name);
    for d in doc.namespace_decls(el) {
        b = b.namespace(d.prefix.clone(), d.uri.clone());
    }
    for a in doc.attributes(el) {
        b = b.attr(a.name().clone(), a.value().to_string());
    }
    for &c in doc.children(el) {
        match doc.kind(c) {
            NodeKind::Element { .. } => b = b.child(element_to_builder(doc, c)),
            NodeKind::Text(t) => b = b.text(t.clone()),
            NodeKind::Comment(t) => b = b.comment(t.clone()),
            _ => {}
        }
    }
    b
}

/// Parses an `<aspects>` document into weaver-ready [`Aspect`]s.
///
/// # Errors
///
/// Returns [`AspectSpecError`] for structural problems, bad pointcuts,
/// positions, or precedences.
///
/// # Examples
///
/// ```
/// use navsep_aspect::xmlspec::parse_aspects;
/// use navsep_xml::Document;
///
/// let doc = Document::parse(r#"<aspects>
///   <aspect name="banner" precedence="5">
///     <rule pointcut='element("body")' position="prepend">
///       <div class="banner">hello</div>
///     </rule>
///   </aspect>
/// </aspects>"#)?;
/// let aspects = parse_aspects(&doc)?;
/// assert_eq!(aspects.len(), 1);
/// assert_eq!(aspects[0].name(), "banner");
/// assert_eq!(aspects[0].precedence(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_aspects(doc: &Document) -> Result<Vec<Aspect>, AspectSpecError> {
    let root = doc
        .root_element()
        .ok_or_else(|| AspectSpecError::InvalidStructure("no root element".to_string()))?;
    if doc.name(root).map(|q| q.local()) != Some("aspects") {
        return Err(AspectSpecError::InvalidStructure(
            "root element must be <aspects>".to_string(),
        ));
    }
    let mut out = Vec::new();
    for aspect_el in doc.child_elements(root) {
        if doc.name(aspect_el).map(|q| q.local()) != Some("aspect") {
            return Err(AspectSpecError::InvalidStructure(format!(
                "unexpected <{}> under <aspects>",
                doc.name(aspect_el)
                    .map(|q| q.local().to_string())
                    .unwrap_or_default()
            )));
        }
        let name = doc.attribute(aspect_el, "name").ok_or_else(|| {
            AspectSpecError::InvalidStructure("<aspect> requires a name attribute".to_string())
        })?;
        let mut aspect = Aspect::new(name);
        if let Some(prec) = doc.attribute(aspect_el, "precedence") {
            let p: i32 = prec
                .parse()
                .map_err(|_| AspectSpecError::InvalidPrecedence(prec.to_string()))?;
            aspect = aspect.with_precedence(p);
        }
        for rule_el in doc.child_elements(aspect_el) {
            if doc.name(rule_el).map(|q| q.local()) != Some("rule") {
                return Err(AspectSpecError::InvalidStructure(
                    "only <rule> elements are allowed inside <aspect>".to_string(),
                ));
            }
            let pointcut_text = doc.attribute(rule_el, "pointcut").ok_or_else(|| {
                AspectSpecError::InvalidStructure("<rule> requires a pointcut".to_string())
            })?;
            let pointcut = Pointcut::parse(pointcut_text)?;
            let position = parse_position(doc.attribute(rule_el, "position").unwrap_or("append"))?;
            if let Some(text) = doc.attribute(rule_el, "text") {
                aspect = aspect.text_rule(pointcut, position, text.to_string());
            } else {
                let fragment: Vec<ElementBuilder> = doc
                    .child_elements(rule_el)
                    .map(|c| element_to_builder(doc, c))
                    .collect();
                aspect = aspect.rule(pointcut, position, fragment);
            }
        }
        out.push(aspect);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weaver::Weaver;

    fn weave_with(doc_text: &str, page_text: &str) -> String {
        let aspects = parse_aspects(&Document::parse(doc_text).unwrap()).unwrap();
        let mut weaver = Weaver::new();
        for a in aspects {
            weaver.add_aspect(a);
        }
        let page = Document::parse(page_text).unwrap();
        let (woven, _) = weaver.weave_page("p.html", &page).unwrap();
        woven.to_xml(&navsep_xml::WriteOptions::default().declaration(false))
    }

    #[test]
    fn parses_and_weaves_element_content() {
        let out = weave_with(
            r#"<aspects>
  <aspect name="nav">
    <rule pointcut='element("body")' position="append">
      <div class="navigation"><a href="next.html">Next</a></div>
    </rule>
  </aspect>
</aspects>"#,
            "<html><body><h1>x</h1></body></html>",
        );
        assert!(out.contains("<div class=\"navigation\"><a href=\"next.html\">Next</a></div>"));
    }

    #[test]
    fn text_attribute_advice() {
        let out = weave_with(
            r#"<aspects>
  <aspect name="note">
    <rule pointcut='element("h1")' position="after" text=" (woven)"/>
  </aspect>
</aspects>"#,
            "<html><body><h1>x</h1></body></html>",
        );
        assert!(out.contains("<h1>x</h1> (woven)"), "{out}");
    }

    #[test]
    fn precedence_and_multiple_aspects() {
        let doc = Document::parse(
            r#"<aspects>
  <aspect name="a" precedence="2"><rule pointcut="true" position="append" text="A"/></aspect>
  <aspect name="b" precedence="-1"><rule pointcut="true" position="append" text="B"/></aspect>
</aspects>"#,
        )
        .unwrap();
        let aspects = parse_aspects(&doc).unwrap();
        assert_eq!(aspects.len(), 2);
        assert_eq!(aspects[0].precedence(), 2);
        assert_eq!(aspects[1].precedence(), -1);
    }

    #[test]
    fn structural_errors() {
        let bad = |s: &str| parse_aspects(&Document::parse(s).unwrap());
        assert!(matches!(
            bad("<notaspects/>"),
            Err(AspectSpecError::InvalidStructure(_))
        ));
        assert!(matches!(
            bad("<aspects><aspect/></aspects>"),
            Err(AspectSpecError::InvalidStructure(_))
        ));
        assert!(matches!(
            bad(r#"<aspects><aspect name="a"><rule position="append"/></aspect></aspects>"#),
            Err(AspectSpecError::InvalidStructure(_))
        ));
        assert!(matches!(
            bad(
                r#"<aspects><aspect name="a"><rule pointcut="element(" position="append"/></aspect></aspects>"#
            ),
            Err(AspectSpecError::Pointcut(_))
        ));
        assert!(matches!(
            bad(
                r#"<aspects><aspect name="a"><rule pointcut="true" position="sideways"/></aspect></aspects>"#
            ),
            Err(AspectSpecError::InvalidPosition(_))
        ));
        assert!(matches!(
            bad(r#"<aspects><aspect name="a" precedence="high"/></aspects>"#),
            Err(AspectSpecError::InvalidPrecedence(_))
        ));
    }

    #[test]
    fn nested_fragment_content_preserved() {
        let doc = Document::parse(
            r#"<aspects><aspect name="n"><rule pointcut='root()' position="append">
                 <outer a="1"><inner b="2">text</inner><!-- c --></outer>
               </rule></aspect></aspects>"#,
        )
        .unwrap();
        let aspects = parse_aspects(&doc).unwrap();
        let mut weaver = Weaver::new();
        for a in aspects {
            weaver.add_aspect(a);
        }
        let page = Document::parse("<page/>").unwrap();
        let (woven, _) = weaver.weave_page("p", &page).unwrap();
        let xml = woven.to_xml(&navsep_xml::WriteOptions::default().declaration(false));
        assert!(xml.contains("<outer a=\"1\"><inner b=\"2\">text</inner><!-- c --></outer>"));
    }
}
