//! Pointcuts: predicates over join points.
//!
//! The paper's §5 asks: *"we should look for one or many join points, that
//! means, where are we going to join the navigation aspect with the classes
//! of the conceptual model?"* navsep's answer is a document-level join-point
//! model (see [`crate::joinpoint`]) filtered by these pointcut predicates,
//! written in a small DSL:
//!
//! ```text
//! element("body") && page("painting-*.html") && !attr("data-no-nav")
//! ```

use crate::error::ParsePointcutError;
use crate::joinpoint::JoinPoint;
use std::fmt;

/// A pointcut predicate tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pointcut {
    /// Matches an element with this local name.
    Element(String),
    /// Matches the page path against a `*`-glob.
    Page(String),
    /// Matches when the attribute exists.
    AttrExists(String),
    /// Matches when the attribute equals the value.
    AttrEquals(String, String),
    /// Matches when the `class` attribute contains the token.
    HasClass(String),
    /// Matches the element with this `id`.
    Id(String),
    /// Matches the page's root element.
    Root,
    /// Conjunction.
    And(Box<Pointcut>, Box<Pointcut>),
    /// Disjunction.
    Or(Box<Pointcut>, Box<Pointcut>),
    /// Negation.
    Not(Box<Pointcut>),
    /// Matches every element join point.
    Always,
}

impl Pointcut {
    /// Parses the pointcut DSL.
    ///
    /// Grammar: `expr := term ('||' term)*`, `term := factor ('&&' factor)*`,
    /// `factor := '!' factor | '(' expr ')' | primitive`, with primitives
    /// `element("…")`, `page("…")`, `attr("k")`, `attr("k","v")`,
    /// `class("…")`, `id("…")`, `root()`, `true`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePointcutError`] with an offset on malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use navsep_aspect::Pointcut;
    ///
    /// let pc = Pointcut::parse(r#"element("body") && page("painting-*")"#)?;
    /// assert!(pc.to_string().contains("element"));
    /// # Ok::<(), navsep_aspect::ParsePointcutError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Self, ParsePointcutError> {
        let mut p = Parser { src: text, pos: 0 };
        let pc = p.expr()?;
        p.skip_ws();
        if p.pos < p.src.len() {
            return Err(ParsePointcutError::new(
                format!("trailing input {:?}", &p.src[p.pos..]),
                p.pos,
            ));
        }
        Ok(pc)
    }

    /// Conjunction builder.
    pub fn and(self, other: Pointcut) -> Pointcut {
        Pointcut::And(Box::new(self), Box::new(other))
    }

    /// Disjunction builder.
    pub fn or(self, other: Pointcut) -> Pointcut {
        Pointcut::Or(Box::new(self), Box::new(other))
    }

    /// Negation builder.
    pub fn negate(self) -> Pointcut {
        Pointcut::Not(Box::new(self))
    }

    /// Whether the pointcut selects `jp`.
    pub fn matches(&self, jp: &JoinPoint<'_>) -> bool {
        self.matches_view(jp)
    }

    /// Whether the pointcut selects the element described by `view`.
    ///
    /// Every pointcut primitive is element-local (name, un-namespaced
    /// attributes, page path, is-root), which is what makes streaming
    /// evaluation possible at all: [`matches`](Pointcut::matches) and the
    /// streaming weaver both funnel through this one implementation, so the
    /// two paths cannot diverge on matching semantics.
    pub fn matches_view(&self, view: &impl ElementView) -> bool {
        match self {
            Pointcut::Element(name) => view
                .local_name()
                .map(|local| local == name)
                .unwrap_or(false),
            Pointcut::Page(glob) => glob_match(glob, view.page()),
            Pointcut::AttrExists(name) => view.attr(name).is_some(),
            Pointcut::AttrEquals(name, value) => view.attr(name) == Some(value.as_str()),
            Pointcut::HasClass(token) => view
                .attr("class")
                .map(|c| c.split_ascii_whitespace().any(|t| t == token))
                .unwrap_or(false),
            Pointcut::Id(id) => view.attr("id") == Some(id.as_str()),
            Pointcut::Root => view.is_root(),
            Pointcut::And(a, b) => a.matches_view(view) && b.matches_view(view),
            Pointcut::Or(a, b) => a.matches_view(view) || b.matches_view(view),
            Pointcut::Not(a) => !a.matches_view(view),
            Pointcut::Always => true,
        }
    }
}

/// The element-local facts a pointcut can observe — implemented by
/// [`JoinPoint`] (DOM-backed) and by the streaming weaver's open-element
/// window.
pub trait ElementView {
    /// The page path being woven.
    fn page(&self) -> &str;
    /// The element's local name (`None` for non-element nodes).
    fn local_name(&self) -> Option<&str>;
    /// The value of the un-namespaced attribute `name` (default namespaces
    /// never apply to attributes, matching `Document::attribute`).
    fn attr(&self, name: &str) -> Option<&str>;
    /// Whether this element is the document's root element.
    fn is_root(&self) -> bool;
}

impl ElementView for JoinPoint<'_> {
    fn page(&self) -> &str {
        self.page
    }

    fn local_name(&self) -> Option<&str> {
        self.doc.name(self.element).map(|q| q.local())
    }

    fn attr(&self, name: &str) -> Option<&str> {
        self.doc.attribute(self.element, name)
    }

    fn is_root(&self) -> bool {
        self.doc.root_element() == Some(self.element)
    }
}

impl fmt::Display for Pointcut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pointcut::Element(n) => write!(f, "element(\"{n}\")"),
            Pointcut::Page(g) => write!(f, "page(\"{g}\")"),
            Pointcut::AttrExists(a) => write!(f, "attr(\"{a}\")"),
            Pointcut::AttrEquals(a, v) => write!(f, "attr(\"{a}\", \"{v}\")"),
            Pointcut::HasClass(c) => write!(f, "class(\"{c}\")"),
            Pointcut::Id(i) => write!(f, "id(\"{i}\")"),
            Pointcut::Root => f.write_str("root()"),
            Pointcut::And(a, b) => write!(f, "({a} && {b})"),
            Pointcut::Or(a, b) => write!(f, "({a} || {b})"),
            Pointcut::Not(a) => write!(f, "!{a}"),
            Pointcut::Always => f.write_str("true"),
        }
    }
}

/// Simple `*`-glob matching (no character classes).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    // Dynamic programming over pattern segments split by '*'.
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut rest = text;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            match rest.strip_prefix(part) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == parts.len() - 1 {
            return rest.ends_with(part);
        } else {
            match rest.find(part) {
                Some(idx) => rest = &rest[idx + part.len()..],
                None => return false,
            }
        }
    }
    // Pattern ends with '*' (last part empty) — anything left matches.
    parts.last().map(|p| p.is_empty()).unwrap_or(false) || rest.is_empty()
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with([' ', '\t', '\n', '\r']) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Pointcut, ParsePointcutError> {
        let mut lhs = self.term()?;
        while self.eat("||") {
            let rhs = self.term()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Pointcut, ParsePointcutError> {
        let mut lhs = self.factor()?;
        while self.eat("&&") {
            let rhs = self.factor()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Pointcut, ParsePointcutError> {
        if self.eat("!") {
            return Ok(self.factor()?.negate());
        }
        if self.eat("(") {
            let inner = self.expr()?;
            if !self.eat(")") {
                return Err(ParsePointcutError::new("expected ')'", self.pos));
            }
            return Ok(inner);
        }
        self.primitive()
    }

    fn primitive(&mut self) -> Result<Pointcut, ParsePointcutError> {
        self.skip_ws();
        let start = self.pos;
        while self.src[self.pos..]
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let ident = &self.src[start..self.pos];
        if ident.is_empty() {
            return Err(ParsePointcutError::new("expected a primitive", self.pos));
        }
        if ident == "true" {
            return Ok(Pointcut::Always);
        }
        if !self.eat("(") {
            return Err(ParsePointcutError::new("expected '('", self.pos));
        }
        self.skip_ws();
        let pc = match ident {
            "root" => Pointcut::Root,
            "element" | "page" | "class" | "id" => {
                let arg = self.string()?;
                match ident {
                    "element" => Pointcut::Element(arg),
                    "page" => Pointcut::Page(arg),
                    "class" => Pointcut::HasClass(arg),
                    _ => Pointcut::Id(arg),
                }
            }
            "attr" => {
                let name = self.string()?;
                if self.eat(",") {
                    self.skip_ws();
                    let value = self.string()?;
                    Pointcut::AttrEquals(name, value)
                } else {
                    Pointcut::AttrExists(name)
                }
            }
            other => {
                return Err(ParsePointcutError::new(
                    format!("unknown primitive {other:?}"),
                    start,
                ))
            }
        };
        if !self.eat(")") {
            return Err(ParsePointcutError::new("expected ')'", self.pos));
        }
        Ok(pc)
    }

    fn string(&mut self) -> Result<String, ParsePointcutError> {
        self.skip_ws();
        if !self.src[self.pos..].starts_with('"') {
            return Err(ParsePointcutError::new("expected a string", self.pos));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.src[self.pos..].chars().next() {
            if c == '"' {
                let s = self.src[start..self.pos].to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += c.len_utf8();
        }
        Err(ParsePointcutError::new("unterminated string", self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navsep_xml::Document;

    fn jp<'d>(doc: &'d Document, page: &'d str, name: &str) -> JoinPoint<'d> {
        let el = doc
            .descendants(doc.document_node())
            .find(|&n| doc.name(n).map(|q| q.local() == name).unwrap_or(false))
            .unwrap();
        JoinPoint {
            page,
            doc,
            element: el,
        }
    }

    fn body_doc() -> Document {
        Document::parse(
            r#"<html><body class="page museum" id="b1" data-nav="off"><p>t</p></body></html>"#,
        )
        .unwrap()
    }

    #[test]
    fn primitives_match() {
        let doc = body_doc();
        let j = jp(&doc, "painting-guitar.html", "body");
        assert!(Pointcut::parse(r#"element("body")"#).unwrap().matches(&j));
        assert!(!Pointcut::parse(r#"element("div")"#).unwrap().matches(&j));
        assert!(Pointcut::parse(r#"page("painting-*")"#)
            .unwrap()
            .matches(&j));
        assert!(!Pointcut::parse(r#"page("painter-*")"#).unwrap().matches(&j));
        assert!(Pointcut::parse(r#"attr("data-nav")"#).unwrap().matches(&j));
        assert!(Pointcut::parse(r#"attr("data-nav", "off")"#)
            .unwrap()
            .matches(&j));
        assert!(!Pointcut::parse(r#"attr("data-nav", "on")"#)
            .unwrap()
            .matches(&j));
        assert!(Pointcut::parse(r#"class("museum")"#).unwrap().matches(&j));
        assert!(!Pointcut::parse(r#"class("mus")"#).unwrap().matches(&j));
        assert!(Pointcut::parse(r#"id("b1")"#).unwrap().matches(&j));
        assert!(Pointcut::parse("true").unwrap().matches(&j));
    }

    #[test]
    fn root_matches_only_root() {
        let doc = body_doc();
        let html = jp(&doc, "x", "html");
        let body = jp(&doc, "x", "body");
        let pc = Pointcut::parse("root()").unwrap();
        assert!(pc.matches(&html));
        assert!(!pc.matches(&body));
    }

    #[test]
    fn boolean_combinators() {
        let doc = body_doc();
        let j = jp(&doc, "painting-guitar.html", "body");
        let pc = Pointcut::parse(
            r#"element("body") && !attr("missing") && (page("zzz") || class("page"))"#,
        )
        .unwrap();
        assert!(pc.matches(&j));
        let pc = Pointcut::parse(r#"element("body") && attr("missing")"#).unwrap();
        assert!(!pc.matches(&j));
    }

    #[test]
    fn precedence_and_over_or() {
        // a || b && c parses as a || (b && c)
        let pc = Pointcut::parse(r#"element("a") || element("b") && element("c")"#).unwrap();
        assert_eq!(
            pc,
            Pointcut::Element("a".into())
                .or(Pointcut::Element("b".into()).and(Pointcut::Element("c".into())))
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Pointcut::parse("").is_err());
        assert!(Pointcut::parse("element(").is_err());
        assert!(Pointcut::parse(r#"element("a") extra"#).is_err());
        assert!(Pointcut::parse(r#"unknown("x")"#).is_err());
        assert!(Pointcut::parse(r#"element("a"#).is_err());
        assert!(Pointcut::parse(r#"(element("a")"#).is_err());
    }

    #[test]
    fn display_round_trips() {
        for src in [
            r#"element("body")"#,
            r#"(element("a") && page("p-*"))"#,
            r#"!attr("k", "v")"#,
            "root()",
        ] {
            let pc = Pointcut::parse(src).unwrap();
            let again = Pointcut::parse(&pc.to_string()).unwrap();
            assert_eq!(pc, again);
        }
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("painting-*", "painting-guitar.html"));
        assert!(glob_match("*.html", "a.html"));
        assert!(!glob_match("*.html", "a.css"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b*c", "aXXbYY"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exactly"));
        assert!(glob_match("", ""));
    }
}
