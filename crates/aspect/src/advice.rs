//! Advice: what to do at a matched join point.

use crate::joinpoint::JoinPoint;
use navsep_xml::ElementBuilder;
use std::fmt;
use std::sync::Arc;

/// Where the advice content lands relative to the matched element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdvicePosition {
    /// As the previous sibling of the element.
    Before,
    /// As the next sibling of the element.
    After,
    /// As the element's first child.
    Prepend,
    /// As the element's last child.
    Append,
    /// Replacing all of the element's children.
    ReplaceContent,
}

impl fmt::Display for AdvicePosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdvicePosition::Before => "before",
            AdvicePosition::After => "after",
            AdvicePosition::Prepend => "prepend",
            AdvicePosition::Append => "append",
            AdvicePosition::ReplaceContent => "replace-content",
        })
    }
}

/// Produces advice content for a specific join point.
pub type ContentFn = Arc<dyn Fn(&JoinPoint<'_>) -> Vec<ElementBuilder> + Send + Sync>;

/// Produces advice content from the page path alone (no document access) —
/// the streamable subset of [`ContentFn`].
pub type PageContentFn = Arc<dyn Fn(&str) -> Vec<ElementBuilder> + Send + Sync>;

/// The content an advice inserts.
#[derive(Clone)]
pub enum AdviceContent {
    /// A fixed fragment (one or more sibling elements).
    Fragment(Vec<ElementBuilder>),
    /// Plain text.
    Text(String),
    /// Content computed per join point — the function sees the whole
    /// document, so rules carrying it force the DOM weave path.
    Generated(ContentFn),
    /// Content computed from the page path only — e.g. navigation links that
    /// depend on *which* page is being woven but not on its contents (the
    /// navsep navigation aspect). Streamable: realizable without a DOM.
    PageGenerated(PageContentFn),
}

impl fmt::Debug for AdviceContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviceContent::Fragment(els) => f
                .debug_tuple("Fragment")
                .field(&format!("{} element(s)", els.len()))
                .finish(),
            AdviceContent::Text(t) => f.debug_tuple("Text").field(t).finish(),
            AdviceContent::Generated(_) => f.write_str("Generated(<fn>)"),
            AdviceContent::PageGenerated(_) => f.write_str("PageGenerated(<fn>)"),
        }
    }
}

impl AdviceContent {
    /// Materializes the content for `jp`.
    pub fn realize(&self, jp: &JoinPoint<'_>) -> Realized {
        match self {
            AdviceContent::Fragment(els) => Realized::Elements(els.clone()),
            AdviceContent::Text(t) => Realized::Text(t.clone()),
            AdviceContent::Generated(f) => Realized::Elements(f(jp)),
            AdviceContent::PageGenerated(f) => Realized::Elements(f(jp.page)),
        }
    }

    /// Materializes the content knowing only the page path. `None` for
    /// [`AdviceContent::Generated`], which needs the whole document — the
    /// streaming weaver never takes this path for such rules (streamability
    /// analysis routes them to the DOM weaver first).
    pub fn realize_for_page(&self, page: &str) -> Option<Realized> {
        match self {
            AdviceContent::Fragment(els) => Some(Realized::Elements(els.clone())),
            AdviceContent::Text(t) => Some(Realized::Text(t.clone())),
            AdviceContent::Generated(_) => None,
            AdviceContent::PageGenerated(f) => Some(Realized::Elements(f(page))),
        }
    }
}

/// Materialized advice content, ready to graft into a page.
#[derive(Debug, Clone)]
pub enum Realized {
    /// Elements to insert.
    Elements(Vec<ElementBuilder>),
    /// Text to insert.
    Text(String),
}

/// One advice: position + content (bound to a pointcut inside an aspect).
#[derive(Debug, Clone)]
pub struct Advice {
    /// Where the content lands.
    pub position: AdvicePosition,
    /// What lands there.
    pub content: AdviceContent,
}

impl Advice {
    /// Creates an advice inserting fixed elements.
    pub fn insert(position: AdvicePosition, elements: Vec<ElementBuilder>) -> Self {
        Advice {
            position,
            content: AdviceContent::Fragment(elements),
        }
    }

    /// Creates an advice inserting text.
    pub fn text(position: AdvicePosition, text: impl Into<String>) -> Self {
        Advice {
            position,
            content: AdviceContent::Text(text.into()),
        }
    }

    /// Creates an advice whose content is computed per join point.
    pub fn generated(
        position: AdvicePosition,
        f: impl Fn(&JoinPoint<'_>) -> Vec<ElementBuilder> + Send + Sync + 'static,
    ) -> Self {
        Advice {
            position,
            content: AdviceContent::Generated(Arc::new(f)),
        }
    }

    /// Creates an advice whose content is computed from the page path alone
    /// (streamable, unlike [`Advice::generated`]).
    pub fn page_generated(
        position: AdvicePosition,
        f: impl Fn(&str) -> Vec<ElementBuilder> + Send + Sync + 'static,
    ) -> Self {
        Advice {
            position,
            content: AdviceContent::PageGenerated(Arc::new(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navsep_xml::Document;

    #[test]
    fn realize_fragment_and_text() {
        let doc = Document::parse("<a/>").unwrap();
        let jp = JoinPoint {
            page: "p",
            doc: &doc,
            element: doc.root_element().unwrap(),
        };
        let adv = Advice::insert(AdvicePosition::Append, vec![ElementBuilder::new("nav")]);
        assert!(matches!(adv.content.realize(&jp), Realized::Elements(v) if v.len() == 1));
        let adv = Advice::text(AdvicePosition::Before, "hi");
        assert!(matches!(adv.content.realize(&jp), Realized::Text(t) if t == "hi"));
    }

    #[test]
    fn generated_content_sees_the_join_point() {
        let doc = Document::parse("<a/>").unwrap();
        let jp = JoinPoint {
            page: "painting-guitar.html",
            doc: &doc,
            element: doc.root_element().unwrap(),
        };
        let adv = Advice::generated(AdvicePosition::Append, |jp| {
            vec![ElementBuilder::new("span").text(jp.page.to_string())]
        });
        let Realized::Elements(els) = adv.content.realize(&jp) else {
            panic!()
        };
        let built = els[0].build_document();
        assert_eq!(
            built.text_content(built.root_element().unwrap()),
            "painting-guitar.html"
        );
    }

    #[test]
    fn page_generated_realizes_with_and_without_a_document() {
        let adv = Advice::page_generated(AdvicePosition::Append, |page| {
            vec![ElementBuilder::new("span").text(page.to_string())]
        });
        // Without a document (the streaming path):
        let Some(Realized::Elements(els)) = adv.content.realize_for_page("p.html") else {
            panic!("page-generated content must realize from the page path");
        };
        let built = els[0].build_document();
        assert_eq!(built.text_content(built.root_element().unwrap()), "p.html");
        // With one (the DOM path) — identical result:
        let doc = Document::parse("<a/>").unwrap();
        let jp = JoinPoint {
            page: "p.html",
            doc: &doc,
            element: doc.root_element().unwrap(),
        };
        let Realized::Elements(els) = adv.content.realize(&jp) else {
            panic!()
        };
        let built = els[0].build_document();
        assert_eq!(built.text_content(built.root_element().unwrap()), "p.html");
        // Document-dependent content refuses the page-only path.
        let gen = Advice::generated(AdvicePosition::Append, |_| vec![]);
        assert!(gen.content.realize_for_page("p.html").is_none());
    }

    #[test]
    fn debug_formats() {
        let adv = Advice::generated(AdvicePosition::After, |_| vec![]);
        assert!(format!("{:?}", adv.content).contains("Generated"));
        let adv = Advice::insert(AdvicePosition::Before, vec![]);
        assert!(format!("{:?}", adv.content).contains("Fragment"));
    }
}
