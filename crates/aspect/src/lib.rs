//! # navsep-aspect — aspect-oriented weaving for documents
//!
//! The paper proposes treating **navigation as an aspect**: specify it
//! separately and let "the AOP mechanisms" weave it with the basic
//! functionality (its Figure 1). AspectJ-style language weaving makes no
//! sense for XML pages, so this crate supplies the document-level analogue
//! its §5 sketches:
//!
//! * **join points** ([`joinpoint`]) — element occurrences during page
//!   rendering;
//! * **pointcuts** ([`Pointcut`]) — a small DSL of predicates
//!   (`element("body") && page("painting-*")`);
//! * **advice** ([`Advice`]) — fragments inserted before/after/inside the
//!   matched element, optionally computed per join point;
//! * **the weaver** ([`Weaver`]) — deterministic composition with aspect
//!   precedence and conflict detection.
//!
//! The navigation aspect built by `navsep-core` is one client; the same
//! engine weaves arbitrary cross-cutting page concerns (banners, audit
//! trails, …), which is what makes it an aspect engine rather than a
//! navigation hack.
//!
//! ## Quick start
//!
//! ```
//! use navsep_aspect::{Aspect, AdvicePosition, Pointcut, Weaver};
//! use navsep_xml::{Document, ElementBuilder};
//!
//! let nav = Aspect::new("navigation").rule(
//!     Pointcut::parse(r#"element("body") && page("painting-*")"#)?,
//!     AdvicePosition::Append,
//!     vec![ElementBuilder::new("a").attr("href", "index.html").text("Back to index")],
//! );
//! let weaver = Weaver::new().aspect(nav);
//! let page = Document::parse("<html><body><h1>Guitar</h1></body></html>")?;
//! let (woven, _) = weaver.weave_page("painting-guitar.html", &page)?;
//! assert!(woven.to_xml_string().contains("Back to index"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod aspect;
pub mod cache;
pub mod compiled;
pub mod error;
pub mod joinpoint;
pub mod pointcut;
pub mod streaming;
pub mod weaver;
pub mod xmlspec;

pub use advice::{Advice, AdviceContent, AdvicePosition, ContentFn, PageContentFn, Realized};
pub use aspect::{AdviceRule, Aspect};
pub use cache::{spec_hash, AspectCache, SpecCache};
pub use compiled::{CandidatePlan, Candidates, CompiledPointcut, CompiledWeaver};
pub use error::{ParsePointcutError, WeaveError};
pub use joinpoint::{join_points, JoinPoint};
pub use pointcut::{glob_match, ElementView, Pointcut};
pub use streaming::{
    rule_streamability, StreamError, StreamReport, StreamabilityViolation, StreamingWeaver,
};
pub use weaver::{WeaveEvent, WeaveReport, Weaver};
pub use xmlspec::{parse_aspects, AspectSpecError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Aspect>();
        assert_send_sync::<Weaver>();
        assert_send_sync::<Pointcut>();
        assert_send_sync::<WeaveError>();
    }
}
