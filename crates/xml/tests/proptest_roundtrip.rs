//! Property-based tests: serialize ∘ parse is the identity on serialized
//! documents, and parsing never panics on arbitrary input.

use navsep_xml::{Document, ElementBuilder, WriteOptions};
use proptest::prelude::*;

/// Strategy for XML element/attribute names (a safe subset).
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,7}".prop_filter("avoid 'xmlns' keyword", |s| s != "xmlns" && s != "xml")
}

/// Strategy for text content, including characters that need escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("&".to_string()),
            Just("\"".to_string()),
            Just("'".to_string()),
            Just(" ".to_string()),
            Just("ñ".to_string()),
            Just("😀".to_string()),
            Just("]]>".to_string()),
        ],
        0..12,
    )
    .prop_map(|v| v.concat())
}

/// Strategy for attribute values, including whitespace that must survive via
/// character references.
fn attr_value_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("v".to_string()),
            Just("<".to_string()),
            Just("&".to_string()),
            Just("\"".to_string()),
            Just("\t".to_string()),
            Just("\n".to_string()),
            Just("é".to_string()),
        ],
        0..8,
    )
    .prop_map(|v| v.concat())
}

/// Recursive strategy producing a random element tree as a builder.
fn tree_strategy() -> impl Strategy<Value = ElementBuilder> {
    let leaf = (name_strategy(), text_strategy()).prop_map(|(name, text)| {
        let b = ElementBuilder::new(name.as_str());
        if text.is_empty() {
            b
        } else {
            b.text(text)
        }
    });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut b = ElementBuilder::new(name.as_str());
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        b = b.attr(k.as_str(), v);
                    }
                }
                b.children(children)
            })
    })
}

proptest! {
    /// serialize → parse → serialize is a fixed point.
    #[test]
    fn serialize_parse_serialize_is_identity(tree in tree_strategy()) {
        let doc = tree.build_document();
        let opts = WriteOptions::default().declaration(false);
        let first = doc.to_xml(&opts);
        let reparsed = Document::parse(&first).expect("own output must reparse");
        let second = reparsed.to_xml(&opts);
        prop_assert_eq!(first, second);
    }

    /// Pretty-printed output also reparses (indentation must not corrupt
    /// attribute values or break well-formedness).
    #[test]
    fn pretty_output_reparses(tree in tree_strategy()) {
        let doc = tree.build_document();
        let pretty = doc.to_pretty_xml();
        prop_assert!(Document::parse(&pretty).is_ok());
    }

    /// Text content survives the round trip exactly for non-whitespace text
    /// placed as the only child.
    #[test]
    fn text_content_round_trips(text in text_strategy()) {
        let doc = ElementBuilder::new("t").text(text.clone()).build_document();
        let xml = doc.to_xml(&WriteOptions::default().declaration(false));
        let back = Document::parse(&xml).unwrap();
        let root = back.root_element().unwrap();
        prop_assert_eq!(back.text_content(root), text);
    }

    /// Attribute values survive the round trip exactly (incl. tab/newline,
    /// which must be written as character references).
    #[test]
    fn attribute_value_round_trips(value in attr_value_strategy()) {
        let doc = ElementBuilder::new("t").attr("k", value.clone()).build_document();
        let xml = doc.to_xml(&WriteOptions::default().declaration(false));
        let back = Document::parse(&xml).unwrap();
        let root = back.root_element().unwrap();
        prop_assert_eq!(back.attribute(root, "k"), Some(value.as_str()));
    }

    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = Document::parse(&input);
    }

    /// The parser never panics on angle-bracket-dense input either.
    #[test]
    fn parser_never_panics_markupish(input in "[<>&;\"'a-z/=! \\-\\[\\]]{0,64}") {
        let _ = Document::parse(&input);
    }
}
