//! A conformance battery for the XML substrate: tricky-but-legal documents
//! must parse, illegal ones must fail, and structures must survive a
//! round trip. Complements the unit tests with the cases that broke real
//! parsers.

use navsep_xml::{Document, WriteOptions, XmlErrorKind, XML_NS};

fn roundtrip(src: &str) -> String {
    let doc = Document::parse(src).expect("document should parse");
    doc.to_xml(&WriteOptions::default().declaration(false))
}

#[test]
fn doctype_with_internal_subset() {
    let src = "<!DOCTYPE museum [\n  <!ELEMENT museum (painting*)>\n  <!ATTLIST painting id ID #REQUIRED>\n]>\n<museum/>";
    assert!(Document::parse(src).is_ok());
}

#[test]
fn comment_with_single_dashes_ok_double_rejected() {
    assert!(Document::parse("<a><!-- one - dash - fine --></a>").is_ok());
    assert!(Document::parse("<a><!-- two -- dashes --></a>").is_err());
}

#[test]
fn cdata_containing_markup_like_text() {
    let doc = Document::parse("<a><![CDATA[<b>&amp;</b>]]></a>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.text_content(root), "<b>&amp;</b>");
    // On reserialization, it is escaped as ordinary text.
    let out = doc.to_xml(&WriteOptions::default().declaration(false));
    assert_eq!(out, "<a>&lt;b&gt;&amp;amp;&lt;/b&gt;</a>");
}

#[test]
fn cdata_with_bracket_tricks() {
    let doc = Document::parse("<a><![CDATA[ ]] ]]] ]]></a>").unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.text_content(root), " ]] ]]] ");
}

#[test]
fn deeply_nested_document_within_limit() {
    let depth = 100; // inside MAX_DEPTH
    let mut src = String::new();
    for i in 0..depth {
        src.push_str(&format!("<e{i}>"));
    }
    for i in (0..depth).rev() {
        src.push_str(&format!("</e{i}>"));
    }
    let doc = Document::parse(&src).expect("deep nesting parses");
    assert_eq!(doc.len(), depth + 1);
    // And serializes back.
    let out = doc.to_xml(&WriteOptions::default().declaration(false));
    assert!(out.starts_with("<e0><e1>"));
}

#[test]
fn pathological_nesting_rejected_not_crashed() {
    // Beyond the limit the parser must fail with a structured error, never
    // blow the stack (the guard is what this test is for).
    let depth = 400;
    let mut src = String::new();
    for _ in 0..depth {
        src.push_str("<d>");
    }
    // Even without closing tags the open-tag cascade must trip the guard.
    let err = Document::parse(&src).unwrap_err();
    assert!(matches!(err.kind(), XmlErrorKind::TooDeep(_)), "{err}");
}

#[test]
fn many_siblings() {
    let n = 10_000;
    let body: String = (0..n).map(|i| format!("<i x=\"{i}\"/>")).collect();
    let doc = Document::parse(&format!("<r>{body}</r>")).unwrap();
    assert_eq!(doc.children(doc.root_element().unwrap()).len(), n);
}

#[test]
fn namespace_shadowing_and_undeclaration() {
    let doc = Document::parse(r#"<a xmlns:p="urn:one"><b xmlns:p="urn:two"><p:x/></b><p:y/></a>"#)
        .unwrap();
    let names: Vec<(String, Option<String>)> = doc
        .descendants(doc.document_node())
        .filter_map(|n| doc.name(n))
        .map(|q| (q.local().to_string(), q.namespace().map(str::to_string)))
        .collect();
    assert_eq!(names[2], ("x".to_string(), Some("urn:two".to_string())));
    assert_eq!(names[3], ("y".to_string(), Some("urn:one".to_string())));
}

#[test]
fn xml_namespace_is_predeclared() {
    let doc = Document::parse(r#"<a xml:lang="es"/>"#).unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.attribute_ns(root, XML_NS, "lang"), Some("es"));
}

#[test]
fn utf8_content_everywhere() {
    let src = "<ñandú título=\"Pájaro\">emoji 🎨 and 中文</ñandú>";
    let out = roundtrip(src);
    assert_eq!(out, src);
}

#[test]
fn entity_in_attribute_survives() {
    let out = roundtrip("<a k=\"&lt;&amp;&gt;\"/>");
    assert_eq!(out, "<a k=\"&lt;&amp;>\"/>"); // '>' needs no escaping in attrs
                                              // Reparse gives the same value.
    let doc = Document::parse(&out).unwrap();
    assert_eq!(doc.attribute(doc.root_element().unwrap(), "k"), Some("<&>"));
}

#[test]
fn numeric_references_boundaries() {
    // Highest valid code point and a supplementary-plane char.
    let doc = Document::parse("<a>&#x10FFFF;&#128512;</a>").unwrap();
    let text = doc.text_content(doc.root_element().unwrap());
    assert_eq!(text.chars().count(), 2);
    // Out-of-range rejected.
    assert!(Document::parse("<a>&#x110000;</a>").is_err());
}

#[test]
fn error_positions_are_precise() {
    let err = Document::parse("<a>\n  <b>\n    &bogus;\n  </b>\n</a>").unwrap_err();
    assert_eq!(err.pos().line, 3);
    assert!(matches!(err.kind(), XmlErrorKind::UnknownEntity(_)));
}

#[test]
fn rejects_classic_malformations() {
    for (case, src) in [
        ("unclosed root", "<a>"),
        ("stray close", "</a>"),
        ("attr without value", "<a k/>"),
        ("attr without quotes", "<a k=v/>"),
        ("lt in attr", "<a k=\"<\"/>"),
        ("two roots", "<a/><b/>"),
        ("text at top level", "<a/>text"),
        ("bad pi target", "<a><?xml version=\"1.0\"?></a>"),
        ("cdata end in text", "<a>]]></a>"),
        ("nul char ref", "<a>&#0;</a>"),
    ] {
        assert!(Document::parse(src).is_err(), "{case} should fail: {src}");
    }
}

#[test]
fn whitespace_preserved_in_text() {
    let doc = Document::parse("<a>  leading and trailing  </a>").unwrap();
    assert_eq!(
        doc.text_content(doc.root_element().unwrap()),
        "  leading and trailing  "
    );
}

#[test]
fn attribute_order_preserved() {
    let out = roundtrip("<a z=\"1\" a=\"2\" m=\"3\"/>");
    assert_eq!(out, "<a z=\"1\" a=\"2\" m=\"3\"/>");
}

#[test]
fn processing_instruction_at_top_level() {
    let doc = Document::parse("<?xml-stylesheet href=\"s.css\" type=\"text/css\"?><a/>").unwrap();
    assert!(doc.root_element().is_some());
    assert_eq!(doc.children(doc.document_node()).len(), 2);
}

#[test]
fn large_attribute_values() {
    let big = "x".repeat(100_000);
    let doc = Document::parse(&format!("<a k=\"{big}\"/>")).unwrap();
    assert_eq!(
        doc.attribute(doc.root_element().unwrap(), "k")
            .map(str::len),
        Some(100_000)
    );
}

#[test]
fn mixed_content_round_trip() {
    let src = "<p>one <em>two</em> three <strong>four</strong> five</p>";
    assert_eq!(roundtrip(src), src);
}

#[test]
fn self_closing_vs_empty_pair_equivalence() {
    let a = Document::parse("<a><b/></a>").unwrap();
    let b = Document::parse("<a><b></b></a>").unwrap();
    // Both serialize to the self-closing form.
    let opts = WriteOptions::default().declaration(false);
    assert_eq!(a.to_xml(&opts), b.to_xml(&opts));
}
