//! Error types for XML parsing and well-formedness checking.

use std::error::Error as StdError;
use std::fmt;

/// A position inside an XML source text, in human-oriented coordinates.
///
/// Lines and columns are 1-based, matching what editors display. The byte
/// `offset` is 0-based and refers to the UTF-8 encoding of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TextPos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (counted in Unicode scalar values).
    pub column: u32,
    /// 0-based byte offset into the source.
    pub offset: usize,
}

impl TextPos {
    /// Creates a position. `line` and `column` are 1-based.
    pub fn new(line: u32, column: u32, offset: usize) -> Self {
        TextPos {
            line,
            column,
            offset,
        }
    }

    /// The start of a document: line 1, column 1, offset 0.
    pub fn start() -> Self {
        TextPos::new(1, 1, 0)
    }
}

impl fmt::Display for TextPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The reason a parse failed, without position information.
///
/// [`ParseXmlError`] couples one of these with a [`TextPos`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// The input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar {
        /// What the parser was expecting, e.g. `"'>'"`.
        expected: String,
        /// The character actually found.
        found: char,
    },
    /// An element or attribute name is empty or contains forbidden characters.
    InvalidName(String),
    /// A closing tag does not match the open element.
    MismatchedTag {
        /// Name of the element that is open.
        expected: String,
        /// Name found in the closing tag.
        found: String,
    },
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// Reference to an entity this parser does not define.
    UnknownEntity(String),
    /// A numeric character reference denotes no valid character.
    InvalidCharRef(String),
    /// A namespace prefix is used without an in-scope declaration.
    UnboundPrefix(String),
    /// The document has no root element, or content outside the root.
    InvalidDocumentStructure(String),
    /// `--` inside a comment, `]]>` in text, or similar lexical violations.
    InvalidToken(String),
    /// Element nesting deeper than the parser's limit (guards the stack).
    TooDeep(usize),
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            XmlErrorKind::InvalidName(name) => write!(f, "invalid XML name {name:?}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "closing tag </{found}> does not match open <{expected}>")
            }
            XmlErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            XmlErrorKind::InvalidCharRef(s) => write!(f, "invalid character reference &#{s};"),
            XmlErrorKind::UnboundPrefix(p) => write!(f, "namespace prefix {p:?} is not bound"),
            XmlErrorKind::InvalidDocumentStructure(msg) => {
                write!(f, "invalid document structure: {msg}")
            }
            XmlErrorKind::InvalidToken(msg) => write!(f, "invalid token: {msg}"),
            XmlErrorKind::TooDeep(limit) => {
                write!(f, "element nesting exceeds the limit of {limit}")
            }
        }
    }
}

/// An error produced while parsing an XML document.
///
/// Carries the [`XmlErrorKind`] describing what went wrong and the
/// [`TextPos`] where it happened.
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
///
/// let err = Document::parse("<a><b></a>").unwrap_err();
/// assert!(err.to_string().contains("</a>"));
/// assert_eq!(err.pos().line, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    kind: XmlErrorKind,
    pos: TextPos,
}

impl ParseXmlError {
    /// Creates an error of `kind` at `pos`.
    pub fn new(kind: XmlErrorKind, pos: TextPos) -> Self {
        ParseXmlError { kind, pos }
    }

    /// What went wrong.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Where it went wrong.
    pub fn pos(&self) -> TextPos {
        self.pos
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.pos)
    }
}

impl StdError for ParseXmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = ParseXmlError::new(
            XmlErrorKind::UnknownEntity("nbsp".into()),
            TextPos::new(3, 17, 42),
        );
        assert_eq!(err.to_string(), "unknown entity &nbsp; at 3:17");
    }

    #[test]
    fn text_pos_orders_by_line_then_column() {
        let a = TextPos::new(1, 9, 8);
        let b = TextPos::new(2, 1, 10);
        assert!(a < b);
    }

    #[test]
    fn kind_display_mismatched_tag() {
        let kind = XmlErrorKind::MismatchedTag {
            expected: "a".into(),
            found: "b".into(),
        };
        assert_eq!(kind.to_string(), "closing tag </b> does not match open <a>");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<ParseXmlError>();
    }
}
