//! Escaping and entity/character-reference expansion.
//!
//! Implements the five predefined XML entities (`&amp;`, `&lt;`, `&gt;`,
//! `&quot;`, `&apos;`) and decimal/hexadecimal character references.

use std::borrow::Cow;

/// Escapes `text` for use as element character data.
///
/// Replaces `&`, `<` and `>` (the latter to stay clear of `]]>`). Returns
/// `Cow::Borrowed` when no replacement is needed, avoiding allocation.
///
/// # Examples
///
/// ```
/// use navsep_xml::escape::escape_text;
/// assert_eq!(escape_text("a < b & c"), "a &lt; b &amp; c");
/// assert!(matches!(escape_text("plain"), std::borrow::Cow::Borrowed(_)));
/// ```
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, |c| match c {
        '&' => Some("&amp;"),
        '<' => Some("&lt;"),
        '>' => Some("&gt;"),
        _ => None,
    })
}

/// Escapes `value` for use inside a double-quoted attribute value.
///
/// Replaces `&`, `<`, `"`, and the whitespace characters tab/newline/CR
/// (so attribute-value normalization round-trips).
pub fn escape_attr(value: &str) -> Cow<'_, str> {
    escape_with(value, |c| match c {
        '&' => Some("&amp;"),
        '<' => Some("&lt;"),
        '"' => Some("&quot;"),
        '\t' => Some("&#9;"),
        '\n' => Some("&#10;"),
        '\r' => Some("&#13;"),
        _ => None,
    })
}

fn escape_with(text: &str, replace: impl Fn(char) -> Option<&'static str>) -> Cow<'_, str> {
    let mut out: Option<String> = None;
    for (i, c) in text.char_indices() {
        if let Some(rep) = replace(c) {
            let buf = out.get_or_insert_with(|| String::with_capacity(text.len() + 8));
            if buf.is_empty() {
                buf.push_str(&text[..i]);
            }
            buf.push_str(rep);
        } else if let Some(buf) = out.as_mut() {
            buf.push(c);
        }
    }
    match out {
        Some(s) => Cow::Owned(s),
        None => Cow::Borrowed(text),
    }
}

/// Expands a predefined entity name to its character.
///
/// Returns `None` for anything but the five XML built-ins.
pub fn predefined_entity(name: &str) -> Option<char> {
    match name {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => None,
    }
}

/// Parses the body of a character reference (`#10`, `#x1F600`) into a char.
///
/// `body` excludes the `&` and `;` delimiters but includes the `#`.
/// Returns `None` when the number is malformed or maps to a code point
/// forbidden in XML documents.
pub fn parse_char_ref(body: &str) -> Option<char> {
    let digits = body.strip_prefix('#')?;
    let code = if let Some(hex) = digits
        .strip_prefix('x')
        .or_else(|| digits.strip_prefix('X'))
    {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        digits.parse::<u32>().ok()?
    };
    let c = char::from_u32(code)?;
    if is_xml_char(c) {
        Some(c)
    } else {
        None
    }
}

/// Returns `true` when `c` is allowed in XML 1.0 content.
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_round_trips_predefined() {
        let s = "a<b>&c";
        let escaped = escape_text(s);
        assert_eq!(escaped, "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn attr_escaping_handles_quotes_and_whitespace() {
        assert_eq!(
            escape_attr("he said \"hi\"\n"),
            "he said &quot;hi&quot;&#10;"
        );
    }

    #[test]
    fn no_allocation_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn predefined_entities_complete() {
        assert_eq!(predefined_entity("amp"), Some('&'));
        assert_eq!(predefined_entity("lt"), Some('<'));
        assert_eq!(predefined_entity("gt"), Some('>'));
        assert_eq!(predefined_entity("quot"), Some('"'));
        assert_eq!(predefined_entity("apos"), Some('\''));
        assert_eq!(predefined_entity("nbsp"), None);
    }

    #[test]
    fn char_refs_decimal_and_hex() {
        assert_eq!(parse_char_ref("#65"), Some('A'));
        assert_eq!(parse_char_ref("#x41"), Some('A'));
        assert_eq!(parse_char_ref("#x1F600"), Some('😀'));
        assert_eq!(parse_char_ref("#0"), None); // NUL forbidden
        assert_eq!(parse_char_ref("#xD800"), None); // surrogate
        assert_eq!(parse_char_ref("65"), None); // missing '#'
        assert_eq!(parse_char_ref("#xZZ"), None);
    }

    #[test]
    fn multibyte_prefix_before_first_escape() {
        assert_eq!(escape_text("año&"), "año&amp;");
    }
}
