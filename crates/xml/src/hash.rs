//! Stable content hashing for the stack.
//!
//! Several layers above the XML substrate need a hash of document text
//! that is deterministic across processes and platforms — unlike `std`'s
//! `RandomState` — so that spec-cache keys, shard assignments, and any
//! logs naming them are reproducible: `navsep-aspect` keys compiled specs
//! by it, `navsep-web` assigns page ids to store shards with it. One
//! implementation lives here so the layers cannot drift apart.

/// 64-bit FNV-1a over `bytes`.
///
/// # Examples
///
/// ```
/// use navsep_xml::fnv1a64;
///
/// assert_eq!(fnv1a64(b"links.xml"), fnv1a64(b"links.xml"));
/// assert_ne!(fnv1a64(b"links.xml"), fnv1a64(b"transform.xml"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl crate::Document {
    /// [`fnv1a64`] of the document's default serialization
    /// ([`to_xml_string`](crate::Document::to_xml_string)), **memoized**:
    /// the first call serializes and hashes, later calls return the stored
    /// value, and any mutation resets the memo. Cloning carries the memo
    /// along (a clone has identical content).
    ///
    /// This is the key the spec caches above (`navsep-aspect`'s
    /// `SpecCache`, `navsep-core`'s `WeaveCache`) look compiled artifacts
    /// up by — memoizing it here makes their steady-state hit path O(1)
    /// instead of a full re-serialization per weave.
    ///
    /// # Examples
    ///
    /// ```
    /// use navsep_xml::{fnv1a64, Document};
    ///
    /// let mut doc = Document::parse("<a>one</a>")?;
    /// let first = doc.content_hash();
    /// assert_eq!(first, fnv1a64(doc.to_xml_string().as_bytes()));
    /// assert_eq!(doc.clone().content_hash(), first);
    ///
    /// // Mutation invalidates the memo.
    /// let root = doc.root_element().unwrap();
    /// doc.set_attribute(root, "id", "x");
    /// assert_ne!(doc.content_hash(), first);
    /// # Ok::<(), navsep_xml::ParseXmlError>(())
    /// ```
    pub fn content_hash(&self) -> u64 {
        *self
            .cached_hash
            .get_or_init(|| fnv1a64(self.to_xml_string().as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b"x"), fnv1a64(b"x\0"));
    }

    #[test]
    fn content_hash_matches_serialized_hash() {
        let doc = crate::Document::parse("<site><page id='a'/></site>").unwrap();
        assert_eq!(doc.content_hash(), fnv1a64(doc.to_xml_string().as_bytes()));
        // Memoized: a second call returns the identical value.
        assert_eq!(doc.content_hash(), doc.content_hash());
        // Equal content parsed separately hashes equal.
        let again = crate::Document::parse("<site><page id='a'/></site>").unwrap();
        assert_eq!(doc.content_hash(), again.content_hash());
    }

    #[test]
    fn content_hash_survives_clone_and_resets_on_mutation() {
        let mut doc = crate::Document::parse("<site><page/></site>").unwrap();
        let before = doc.content_hash();
        assert_eq!(doc.clone().content_hash(), before);

        let root = doc.root_element().unwrap();
        doc.create_element(root, "extra");
        let after = doc.content_hash();
        assert_ne!(before, after, "mutation must invalidate the memo");
        assert_eq!(after, fnv1a64(doc.to_xml_string().as_bytes()));

        // Every mutation path resets, including attribute edits and detach.
        doc.set_attribute(root, "k", "v");
        let with_attr = doc.content_hash();
        assert_ne!(after, with_attr);
        let child = doc.children(root)[0];
        doc.detach(child);
        assert_ne!(with_attr, doc.content_hash());
    }
}
