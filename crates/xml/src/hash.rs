//! Stable content hashing for the stack.
//!
//! Several layers above the XML substrate need a hash of document text
//! that is deterministic across processes and platforms — unlike `std`'s
//! `RandomState` — so that spec-cache keys, shard assignments, and any
//! logs naming them are reproducible: `navsep-aspect` keys compiled specs
//! by it, `navsep-web` assigns page ids to store shards with it. One
//! implementation lives here so the layers cannot drift apart.

/// 64-bit FNV-1a over `bytes`.
///
/// # Examples
///
/// ```
/// use navsep_xml::fnv1a64;
///
/// assert_eq!(fnv1a64(b"links.xml"), fnv1a64(b"links.xml"));
/// assert_ne!(fnv1a64(b"links.xml"), fnv1a64(b"transform.xml"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b"x"), fnv1a64(b"x\0"));
    }
}
