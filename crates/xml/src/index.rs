//! Lazily built per-document lookup indexes.
//!
//! Walking `descendants()` on every `element_by_id` call or pointcut match
//! makes the weave hot path O(nodes × rules). [`DocumentIndex`] is built
//! once per document *content state* — a single pre-order pass recording
//! id→node, tag-name→nodes, and name-attribute→nodes maps plus a document
//! order rank for every reachable node — and is memoized on the
//! [`Document`] with the same [`OnceLock`](std::sync::OnceLock) discipline
//! as [`content_hash`](Document::content_hash): every mutating method
//! resets both memos through one choke point, so the index can never go
//! stale while the hash is fresh (or vice versa).
//!
//! Layers above consume the index through [`Document::index`]:
//! `navsep-xpointer` compiles location paths against the tag buckets,
//! `navsep-aspect` resolves pointcut candidate sets from them, and
//! `Document::element_by_id` is a plain map lookup.

use crate::dom::{Document, NodeId};
use crate::name::XML_NS;
use std::collections::HashMap;
use std::sync::Arc;

/// Document-order rank assigned to nodes not reachable from the document
/// node (detached subtrees); orders them after all reachable nodes.
const UNREACHABLE: u32 = u32::MAX;

/// Lookup tables over one document content state.
///
/// All node lists are in document (pre-order) order and contain only nodes
/// reachable from the document node — detached subtrees are not indexed,
/// matching what serialization and `descendants(document_node())` see.
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
///
/// let doc = Document::parse(
///     "<museum><painting id='guitar'/><painting id='guernica'/></museum>",
/// )?;
/// let idx = doc.index();
/// assert_eq!(idx.elements_named("painting").len(), 2);
/// assert_eq!(idx.element_by_id("guitar"), doc.element_by_id("guitar"));
/// assert_eq!(idx.element_count(), 3);
/// # Ok::<(), navsep_xml::ParseXmlError>(())
/// ```
#[derive(Debug, Default)]
pub struct DocumentIndex {
    /// Every element, pre-order.
    elements: Vec<NodeId>,
    /// Arena index → pre-order rank ([`UNREACHABLE`] for detached nodes).
    order: Vec<u32>,
    /// Element local name → elements, pre-order.
    by_tag: HashMap<String, Vec<NodeId>>,
    /// `id="…"` attribute value → elements, pre-order.
    by_id: HashMap<String, Vec<NodeId>>,
    /// `xml:id="…"` attribute value → elements, pre-order.
    by_xml_id: HashMap<String, Vec<NodeId>>,
    /// `name="…"` attribute value → elements, pre-order.
    by_name_attr: HashMap<String, Vec<NodeId>>,
}

impl DocumentIndex {
    pub(crate) fn build(doc: &Document) -> Self {
        let mut idx = DocumentIndex {
            elements: Vec::new(),
            order: vec![UNREACHABLE; doc.len()],
            by_tag: HashMap::new(),
            by_id: HashMap::new(),
            by_xml_id: HashMap::new(),
            by_name_attr: HashMap::new(),
        };
        for (rank, node) in doc.descendants(doc.document_node()).enumerate() {
            idx.order[node.index()] = u32::try_from(rank).expect("document too large");
            let Some(name) = doc.name(node) else {
                continue;
            };
            idx.elements.push(node);
            idx.by_tag
                .entry(name.local().to_string())
                .or_default()
                .push(node);
            if let Some(v) = doc.attribute(node, "id") {
                idx.by_id.entry(v.to_string()).or_default().push(node);
            }
            if let Some(v) = doc.attribute_ns(node, XML_NS, "id") {
                idx.by_xml_id.entry(v.to_string()).or_default().push(node);
            }
            if let Some(v) = doc.attribute(node, "name") {
                idx.by_name_attr
                    .entry(v.to_string())
                    .or_default()
                    .push(node);
            }
        }
        idx
    }

    /// Every element of the document, in document (pre-order) order.
    pub fn elements(&self) -> &[NodeId] {
        &self.elements
    }

    /// Number of elements — the weaver's join-point count.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Elements whose local name is `local`, in document order.
    pub fn elements_named(&self, local: &str) -> &[NodeId] {
        self.by_tag.get(local).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Elements carrying `id="value"` (the plain, no-namespace attribute),
    /// in document order.
    pub fn elements_with_id(&self, value: &str) -> &[NodeId] {
        self.by_id.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Elements carrying `xml:id="value"`, in document order.
    pub fn elements_with_xml_id(&self, value: &str) -> &[NodeId] {
        self.by_xml_id.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Elements carrying `name="value"`, in document order.
    pub fn elements_with_name_attr(&self, value: &str) -> &[NodeId] {
        self.by_name_attr
            .get(value)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The first element (in document order) with `id="value"` or
    /// `xml:id="value"` — the lookup behind
    /// [`Document::element_by_id`].
    pub fn element_by_id(&self, value: &str) -> Option<NodeId> {
        let plain = self.elements_with_id(value).first().copied();
        let xml = self.elements_with_xml_id(value).first().copied();
        match (plain, xml) {
            (Some(a), Some(b)) => Some(if self.order_of(a) <= self.order_of(b) {
                a
            } else {
                b
            }),
            (a, b) => a.or(b),
        }
    }

    /// Pre-order rank of `id` in the document ([`u32::MAX`] when the node
    /// is detached / unreachable from the document node). Comparing ranks
    /// compares document order.
    pub fn order_of(&self, id: NodeId) -> u32 {
        self.order.get(id.index()).copied().unwrap_or(UNREACHABLE)
    }

    /// `true` when `id` is reachable from the document node.
    pub fn is_reachable(&self, id: NodeId) -> bool {
        self.order_of(id) != UNREACHABLE
    }
}

impl Document {
    /// The document's lookup index, built on first use and memoized until
    /// the next mutation — the same lifecycle as
    /// [`content_hash`](Document::content_hash), reset by the same
    /// mutation choke point, so index and hash are always in lockstep.
    ///
    /// # Examples
    ///
    /// ```
    /// use navsep_xml::Document;
    ///
    /// let mut doc = Document::parse("<r><x id='a'/></r>")?;
    /// let x = doc.index().element_by_id("a").unwrap();
    /// doc.set_attribute(x, "id", "b"); // mutation → index rebuilt lazily
    /// assert!(doc.index().element_by_id("a").is_none());
    /// assert!(doc.index().element_by_id("b").is_some());
    /// # Ok::<(), navsep_xml::ParseXmlError>(())
    /// ```
    pub fn index(&self) -> &DocumentIndex {
        self.cached_index
            .get_or_init(|| Arc::new(DocumentIndex::build(self)))
    }

    /// The memoized index as a shared handle, for callers that need to hold
    /// it beyond a borrow of the document.
    pub fn index_arc(&self) -> Arc<DocumentIndex> {
        self.index();
        Arc::clone(self.cached_index.get().expect("just initialized"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        Document::parse(
            "<museum><painter id=\"picasso\" name=\"Pablo\"><painting id=\"guitar\"/>\
             <painting id=\"guernica\"/></painter><hall name=\"Pablo\"/></museum>",
        )
        .unwrap()
    }

    #[test]
    fn buckets_are_in_document_order() {
        let doc = sample();
        let idx = doc.index();
        let paintings = idx.elements_named("painting");
        assert_eq!(paintings.len(), 2);
        assert!(idx.order_of(paintings[0]) < idx.order_of(paintings[1]));
        assert_eq!(doc.attribute(paintings[0], "id"), Some("guitar"));
        let named: Vec<_> = idx.elements_with_name_attr("Pablo").to_vec();
        assert_eq!(named.len(), 2);
        assert_eq!(doc.name(named[0]).unwrap().local(), "painter");
        assert_eq!(doc.name(named[1]).unwrap().local(), "hall");
    }

    #[test]
    fn element_order_matches_descendants() {
        let doc = sample();
        let idx = doc.index();
        let walked: Vec<NodeId> = doc
            .descendants(doc.document_node())
            .filter(|&n| doc.is_element(n))
            .collect();
        assert_eq!(idx.elements(), walked.as_slice());
        assert_eq!(idx.element_count(), walked.len());
        // Ranks increase along the pre-order walk.
        for pair in walked.windows(2) {
            assert!(idx.order_of(pair[0]) < idx.order_of(pair[1]));
        }
    }

    #[test]
    fn element_by_id_prefers_first_in_document_order() {
        // xml:id earlier in the document than a plain id with the same value.
        let doc = Document::parse(
            "<r xmlns:xml=\"http://www.w3.org/XML/1998/namespace\">\
             <a xml:id=\"dup\"/><b id=\"dup\"/></r>",
        )
        .unwrap();
        let found = doc.index().element_by_id("dup").unwrap();
        assert_eq!(doc.name(found).unwrap().local(), "a");
        // And the routed Document method agrees with a full scan.
        assert_eq!(doc.element_by_id("dup"), Some(found));
    }

    #[test]
    fn detached_nodes_are_not_indexed() {
        let mut doc = sample();
        let stray = doc.create_detached_element("stray");
        doc.set_attribute(stray, "id", "stray");
        let idx = doc.index();
        assert!(idx.element_by_id("stray").is_none());
        assert!(!idx.is_reachable(stray));
        assert!(idx.elements_named("stray").is_empty());
    }

    #[test]
    fn index_invalidated_exactly_when_content_hash_resets() {
        // Every mutation that resets the content-hash memo must also reset
        // the index memo; both are cleared by the same choke point.
        let mutations: Vec<(&str, fn(&mut Document))> = vec![
            ("create_element", |d| {
                let r = d.root_element().unwrap();
                d.create_element(r, "extra");
            }),
            ("create_text", |d| {
                let r = d.root_element().unwrap();
                d.create_text(r, "t");
            }),
            ("create_comment", |d| {
                let r = d.root_element().unwrap();
                d.create_comment(r, "c");
            }),
            ("create_pi", |d| {
                let r = d.root_element().unwrap();
                d.create_pi(r, "t", "data");
            }),
            ("set_attribute", |d| {
                let r = d.root_element().unwrap();
                d.set_attribute(r, "k", "v");
            }),
            ("declare_namespace", |d| {
                let r = d.root_element().unwrap();
                d.declare_namespace(r, "p", "urn:x");
            }),
            ("detach", |d| {
                let g = d.element_by_id("guitar").unwrap();
                d.detach(g);
            }),
            ("insert_child_at", |d| {
                let r = d.root_element().unwrap();
                let g = d.element_by_id("guitar").unwrap();
                d.insert_child_at(r, 0, g);
            }),
            ("append_child", |d| {
                let r = d.root_element().unwrap();
                let g = d.element_by_id("guitar").unwrap();
                d.append_child(r, g);
            }),
            ("create_detached_element", |d| {
                d.create_detached_element("x");
            }),
            ("create_detached_text", |d| {
                d.create_detached_text("x");
            }),
            ("import_subtree", |d| {
                let other = Document::parse("<y/>").unwrap();
                let src = other.root_element().unwrap();
                let r = d.root_element().unwrap();
                d.import_subtree(r, &other, src);
            }),
        ];
        for (name, mutate) in mutations {
            let mut doc = sample();
            // Prime both memos.
            doc.content_hash();
            doc.index();
            assert!(doc.cached_hash.get().is_some(), "{name}: hash primed");
            assert!(doc.cached_index.get().is_some(), "{name}: index primed");
            mutate(&mut doc);
            assert_eq!(
                doc.cached_hash.get().is_some(),
                doc.cached_index.get().is_some(),
                "{name}: hash and index memos must reset together"
            );
            assert!(
                doc.cached_index.get().is_none(),
                "{name}: mutation must invalidate the index"
            );
        }
    }

    #[test]
    fn clone_carries_the_index_memo() {
        let doc = sample();
        doc.index();
        let clone = doc.clone();
        assert!(
            clone.cached_index.get().is_some(),
            "a clone has identical content, so the memo may be reused"
        );
        assert_eq!(
            clone.index().element_by_id("guitar"),
            doc.index().element_by_id("guitar"),
            "NodeIds are arena indexes, identical across a clone"
        );
    }

    #[test]
    fn rebuild_after_mutation_sees_new_content() {
        let mut doc = sample();
        assert_eq!(doc.index().elements_named("painting").len(), 2);
        let painter = doc.element_by_id("picasso").unwrap();
        let extra = doc.create_element(painter, "painting");
        doc.set_attribute(extra, "id", "three-musicians");
        assert_eq!(doc.index().elements_named("painting").len(), 3);
        assert_eq!(doc.index().element_by_id("three-musicians"), Some(extra));
        assert_eq!(doc.element_by_id("three-musicians"), Some(extra));
    }
}
