//! Qualified names and namespace machinery.
//!
//! XML 1.0 + Namespaces: every element and attribute has a *qualified name*
//! consisting of an optional prefix and a local part; prefixes are bound to
//! namespace URIs by `xmlns` / `xmlns:p` declarations that scope over the
//! declaring element's subtree.

use std::fmt;

/// Namespace URI reserved for the `xml` prefix (e.g. `xml:id`, `xml:lang`).
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
/// Namespace URI reserved for namespace declarations themselves.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";

/// A qualified XML name with its resolved namespace.
///
/// `QName` stores the lexical `prefix` (empty for unprefixed names), the
/// `local` part, and the resolved `namespace` URI, if any. Two names are
/// semantically equal when local part and namespace agree; the prefix is a
/// serialization detail. [`QName::matches`] implements that comparison, while
/// `PartialEq` on the whole struct is strict (prefix included) so that
/// round-trip tests can be exact.
///
/// # Examples
///
/// ```
/// use navsep_xml::QName;
///
/// let plain = QName::new("painting");
/// assert_eq!(plain.local(), "painting");
/// assert!(plain.namespace().is_none());
///
/// let xlink = QName::with_namespace("xlink", "href", "http://www.w3.org/1999/xlink");
/// assert_eq!(xlink.to_string(), "xlink:href");
/// assert!(xlink.matches(Some("http://www.w3.org/1999/xlink"), "href"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    prefix: String,
    local: String,
    namespace: Option<String>,
}

impl QName {
    /// Creates an unprefixed name in no namespace (the common case).
    pub fn new(local: impl Into<String>) -> Self {
        QName {
            prefix: String::new(),
            local: local.into(),
            namespace: None,
        }
    }

    /// Creates a name with an explicit prefix and resolved namespace URI.
    pub fn with_namespace(
        prefix: impl Into<String>,
        local: impl Into<String>,
        namespace: impl Into<String>,
    ) -> Self {
        QName {
            prefix: prefix.into(),
            local: local.into(),
            namespace: Some(namespace.into()),
        }
    }

    /// Creates an unprefixed name bound to a default namespace URI.
    pub fn in_default_namespace(local: impl Into<String>, namespace: impl Into<String>) -> Self {
        QName {
            prefix: String::new(),
            local: local.into(),
            namespace: Some(namespace.into()),
        }
    }

    /// The lexical prefix; empty string when the name is unprefixed.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The local part of the name.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// The resolved namespace URI, if the name is in a namespace.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// Semantic comparison: namespace URI + local part, ignoring the prefix.
    pub fn matches(&self, namespace: Option<&str>, local: &str) -> bool {
        self.local == local && self.namespace.as_deref() == namespace
    }

    /// The name as written in markup: `prefix:local` or just `local`.
    pub fn as_markup(&self) -> String {
        if self.prefix.is_empty() {
            self.local.clone()
        } else {
            format!("{}:{}", self.prefix, self.local)
        }
    }

    /// Splits a lexical name into `(prefix, local)`.
    ///
    /// Returns `None` for malformed names (empty parts, more than one colon).
    pub fn split_lexical(name: &str) -> Option<(&str, &str)> {
        match name.find(':') {
            None => Some(("", name)),
            Some(idx) => {
                let (prefix, rest) = name.split_at(idx);
                let local = &rest[1..];
                if prefix.is_empty() || local.is_empty() || local.contains(':') {
                    None
                } else {
                    Some((prefix, local))
                }
            }
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            write!(f, "{}", self.local)
        } else {
            write!(f, "{}:{}", self.prefix, self.local)
        }
    }
}

impl From<&str> for QName {
    /// Parses `"prefix:local"` lexically *without* namespace resolution.
    fn from(s: &str) -> Self {
        match QName::split_lexical(s) {
            Some(("", local)) => QName::new(local),
            Some((prefix, local)) => QName {
                prefix: prefix.to_string(),
                local: local.to_string(),
                namespace: None,
            },
            None => QName::new(s),
        }
    }
}

/// Returns `true` if `c` may start an XML name.
pub fn is_name_start_char(c: char) -> bool {
    matches!(c,
        ':' | '_' | 'A'..='Z' | 'a'..='z'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// Returns `true` if `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c)
        || matches!(c, '-' | '.' | '0'..='9' | '\u{B7}' | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// Returns `true` if `name` is a syntactically valid XML name.
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => chars.all(is_name_char),
        _ => false,
    }
}

/// A single namespace declaration: a prefix (empty = default) bound to a URI.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NamespaceDecl {
    /// Declared prefix; empty string for the default namespace.
    pub prefix: String,
    /// The namespace URI; empty string *un*-declares the default namespace.
    pub uri: String,
}

/// A scoped stack of namespace bindings used during parsing.
///
/// Push one frame per open element, declare bindings into it, and pop on
/// close. Lookup walks frames from innermost to outermost. The `xml` prefix
/// is implicitly bound per the Namespaces in XML recommendation.
#[derive(Debug, Clone, Default)]
pub struct NamespaceStack {
    frames: Vec<Vec<NamespaceDecl>>,
}

impl NamespaceStack {
    /// Creates an empty stack (only the implicit `xml` binding in scope).
    pub fn new() -> Self {
        NamespaceStack { frames: Vec::new() }
    }

    /// Opens a new scope; bindings declared now are dropped by [`pop`].
    ///
    /// [`pop`]: NamespaceStack::pop
    pub fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    /// Closes the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        self.frames.pop().expect("namespace stack underflow");
    }

    /// Declares `prefix` (empty = default namespace) bound to `uri` in the
    /// innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn declare(&mut self, prefix: impl Into<String>, uri: impl Into<String>) {
        self.frames
            .last_mut()
            .expect("declare outside any namespace scope")
            .push(NamespaceDecl {
                prefix: prefix.into(),
                uri: uri.into(),
            });
    }

    /// Resolves `prefix` to its in-scope URI.
    ///
    /// Returns `None` for unbound prefixes. The empty prefix resolves to the
    /// default namespace, returning `None` when that is undeclared (or has
    /// been re-declared to the empty string).
    pub fn resolve(&self, prefix: &str) -> Option<&str> {
        if prefix == "xml" {
            return Some(XML_NS);
        }
        if prefix == "xmlns" {
            return Some(XMLNS_NS);
        }
        for frame in self.frames.iter().rev() {
            for decl in frame.iter().rev() {
                if decl.prefix == prefix {
                    if decl.uri.is_empty() {
                        return None;
                    }
                    return Some(&decl.uri);
                }
            }
        }
        None
    }

    /// The default namespace URI in scope, if any.
    pub fn default_namespace(&self) -> Option<&str> {
        self.resolve("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_display() {
        assert_eq!(QName::new("a").to_string(), "a");
        assert_eq!(QName::with_namespace("x", "a", "urn:x").to_string(), "x:a");
    }

    #[test]
    fn qname_matches_ignores_prefix() {
        let a = QName::with_namespace("p", "href", "urn:l");
        let b = QName::with_namespace("q", "href", "urn:l");
        assert!(a.matches(Some("urn:l"), "href"));
        assert!(b.matches(Some("urn:l"), "href"));
        assert_ne!(a, b); // strict equality keeps the prefix
    }

    #[test]
    fn split_lexical_accepts_plain_and_prefixed() {
        assert_eq!(QName::split_lexical("a"), Some(("", "a")));
        assert_eq!(QName::split_lexical("p:a"), Some(("p", "a")));
        assert_eq!(QName::split_lexical(":a"), None);
        assert_eq!(QName::split_lexical("p:"), None);
        assert_eq!(QName::split_lexical("p:a:b"), None);
    }

    #[test]
    fn name_validity() {
        assert!(is_valid_name("painting"));
        assert!(is_valid_name("_id"));
        assert!(is_valid_name("ns:a")); // colon allowed lexically
        assert!(!is_valid_name("1abc"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("a b"));
        assert!(is_valid_name("año")); // non-ASCII letters allowed
    }

    #[test]
    fn namespace_stack_scoping() {
        let mut ns = NamespaceStack::new();
        ns.push();
        ns.declare("", "urn:default");
        ns.declare("x", "urn:one");
        assert_eq!(ns.resolve("x"), Some("urn:one"));
        assert_eq!(ns.default_namespace(), Some("urn:default"));

        ns.push();
        ns.declare("x", "urn:two");
        assert_eq!(ns.resolve("x"), Some("urn:two"));
        ns.pop();

        assert_eq!(ns.resolve("x"), Some("urn:one"));
        ns.pop();
        assert_eq!(ns.resolve("x"), None);
    }

    #[test]
    fn xml_prefix_is_implicit() {
        let ns = NamespaceStack::new();
        assert_eq!(ns.resolve("xml"), Some(XML_NS));
    }

    #[test]
    fn empty_uri_undeclares_default() {
        let mut ns = NamespaceStack::new();
        ns.push();
        ns.declare("", "urn:d");
        ns.push();
        ns.declare("", "");
        assert_eq!(ns.default_namespace(), None);
        ns.pop();
        assert_eq!(ns.default_namespace(), Some("urn:d"));
    }
}
