//! # navsep-xml — the XML substrate
//!
//! A self-contained XML 1.0 + Namespaces implementation: parser, arena DOM,
//! serializer, and a fluent tree builder. Everything in the navsep
//! reproduction of *"Separating the Navigational Aspect"* (Reina Quintero &
//! Torres Valderrama, 2002) rides on XML — data documents, XLink linkbases,
//! and the woven output pages — so this crate is the foundation of the stack.
//!
//! The paper's premise is that XML already separated *presentation* from
//! *data*; navsep adds the third separated concern (*navigation*). This crate
//! deliberately implements only document-level XML: DTD entity definitions
//! are rejected rather than half-supported, and external entities do not
//! exist (no I/O happens during parsing).
//!
//! ## Quick start
//!
//! ```
//! use navsep_xml::{Document, ElementBuilder, WriteOptions};
//!
//! // Parse...
//! let doc = Document::parse("<museum><painting id='guitar'>Guitar</painting></museum>")?;
//! let guitar = doc.element_by_id("guitar").unwrap();
//! assert_eq!(doc.text_content(guitar), "Guitar");
//!
//! // ...build...
//! let page = ElementBuilder::new("html")
//!     .child(ElementBuilder::new("body").text("hello"))
//!     .build_document();
//!
//! // ...serialize.
//! let xml = page.to_xml(&WriteOptions::default().declaration(false));
//! assert_eq!(xml, "<html><body>hello</body></html>");
//! # Ok::<(), navsep_xml::ParseXmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dom;
pub mod error;
pub mod escape;
pub mod events;
pub mod hash;
pub mod index;
pub mod name;
pub mod reader;
pub mod writer;

pub use builder::ElementBuilder;
pub use dom::{Attribute, Descendants, Document, NodeId, NodeKind};
pub use error::{ParseXmlError, TextPos, XmlErrorKind};
pub use events::{EventReader, XmlEvent};
pub use hash::fnv1a64;
pub use index::DocumentIndex;
pub use name::{NamespaceDecl, NamespaceStack, QName, XMLNS_NS, XML_NS};
pub use reader::MAX_DEPTH;
pub use writer::{
    fragment_to_string, write_comment_markup, write_pi_markup, write_start_tag_open, WriteOptions,
    Writer, XML_DECLARATION,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Document>();
        assert_send_sync::<QName>();
        assert_send_sync::<ParseXmlError>();
        assert_send_sync::<WriteOptions>();
    }
}
