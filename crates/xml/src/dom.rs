//! An arena-based XML document object model.
//!
//! A [`Document`] owns all nodes in a flat arena; nodes are referenced by
//! copyable [`NodeId`] handles. This gives cheap traversal without reference
//! counting and makes structural mutation (needed by the aspect weaver)
//! straightforward.

use crate::error::{ParseXmlError, TextPos, XmlErrorKind};
use crate::name::{NamespaceDecl, QName};
use crate::writer::{WriteOptions, Writer};
use std::fmt;

/// A handle to a node inside a [`Document`].
///
/// Ids are only meaningful for the document that produced them; using an id
/// from another document yields unspecified (but memory-safe) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(idx: usize) -> Self {
        NodeId(u32::try_from(idx).expect("document too large"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A single attribute: a qualified name and a (normalized) value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: QName,
    value: String,
}

impl Attribute {
    /// Creates an attribute with a fully-resolved [`QName`].
    pub fn new(name: QName, value: impl Into<String>) -> Self {
        Attribute {
            name,
            value: value.into(),
        }
    }

    /// Creates an unprefixed, no-namespace attribute.
    pub fn local(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: QName::new(name.into()),
            value: value.into(),
        }
    }

    /// The attribute's qualified name.
    pub fn name(&self) -> &QName {
        &self.name
    }

    /// The attribute's value.
    pub fn value(&self) -> &str {
        &self.value
    }
}

/// What a node is: the document root, an element, or leaf content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document node; parent of the root element, any
    /// top-level comments and processing instructions.
    Document,
    /// An element with a name, attributes, and namespace declarations.
    Element {
        /// The element's qualified name.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// Namespace declarations written on this element.
        namespace_decls: Vec<NamespaceDecl>,
    },
    /// Character data (both plain text and CDATA end up here).
    Text(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// The PI target, e.g. `xml-stylesheet`.
        target: String,
        /// Everything after the target, unparsed.
        data: String,
    },
}

#[derive(Debug, Clone)]
struct NodeData {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    kind: NodeKind,
}

/// An XML document: a tree of elements, text, comments and PIs.
///
/// Construct one by [parsing](Document::parse) or programmatically via
/// [`Document::new`] plus the mutation methods (or the fluent
/// [`ElementBuilder`](crate::builder::ElementBuilder)).
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
///
/// let doc = Document::parse("<museum><painting id='guitar'/></museum>")?;
/// let root = doc.root_element().unwrap();
/// assert_eq!(doc.name(root).unwrap().local(), "museum");
/// let painting = doc.children(root)[0];
/// assert_eq!(doc.attribute(painting, "id"), Some("guitar"));
/// # Ok::<(), navsep_xml::ParseXmlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
    /// Memoized [`content_hash`](Document::content_hash); reset by every
    /// mutating method so it can never go stale. Cloning a document carries
    /// the memo along (a clone has identical content by construction).
    pub(crate) cached_hash: std::sync::OnceLock<u64>,
    /// Memoized [`index`](Document::index); shares the hash memo's
    /// lifecycle — both are reset by the same [`invalidate_memos`]
    /// choke point, so the index is fresh exactly when the hash is.
    ///
    /// [`invalidate_memos`]: Document::invalidate_memos
    pub(crate) cached_index: std::sync::OnceLock<std::sync::Arc<crate::index::DocumentIndex>>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData {
                parent: None,
                children: Vec::new(),
                kind: NodeKind::Document,
            }],
            cached_hash: std::sync::OnceLock::new(),
            cached_index: std::sync::OnceLock::new(),
        }
    }

    /// Parses an XML string into a document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] on any well-formedness violation, with the
    /// source position of the problem.
    pub fn parse(text: &str) -> Result<Self, ParseXmlError> {
        crate::reader::parse_document(text)
    }

    /// Clones the document with at least `additional` spare slots in the
    /// node arena. A derived `clone()` allocates exactly `len` slots, so the
    /// very first node inserted into the clone reallocates — and memcpys —
    /// the entire arena; on a 100k-element page that realloc costs more than
    /// the insertions themselves. Editing pipelines that clone-then-mutate
    /// (the weaver, for one) use this to fold the headroom into the copy the
    /// clone performs anyway.
    #[must_use]
    pub fn cloned_with_headroom(&self, additional: usize) -> Document {
        let mut nodes = Vec::with_capacity(self.nodes.len() + additional);
        nodes.extend(self.nodes.iter().cloned());
        Document {
            nodes,
            cached_hash: self.cached_hash.clone(),
            cached_index: self.cached_index.clone(),
        }
    }

    /// The synthetic document node (always present).
    pub fn document_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The root element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.nodes[0]
            .children
            .iter()
            .copied()
            .find(|&id| self.is_element(id))
    }

    /// Number of nodes in the arena (including the document node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the document holds nothing beyond the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    /// The kind of `id`.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// `true` if `id` is an element.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Element { .. })
    }

    /// `true` if `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Text(_))
    }

    /// The element name of `id`, or `None` when `id` is not an element.
    pub fn name(&self, id: NodeId) -> Option<&QName> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The parent of `id` (`None` for the document node).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The children of `id`, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Child *elements* of `id`, in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// First child element with the given local name (any namespace).
    pub fn first_child_named(&self, id: NodeId, local: &str) -> Option<NodeId> {
        self.child_elements(id)
            .find(|&c| self.name(c).map(|n| n.local() == local).unwrap_or(false))
    }

    /// All child elements with the given local name.
    pub fn children_named<'a>(
        &'a self,
        id: NodeId,
        local: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id)
            .filter(move |&c| self.name(c).map(|n| n.local() == local).unwrap_or(false))
    }

    /// All nodes of the subtree rooted at `id`, in document order
    /// (pre-order), including `id` itself.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// The attributes of element `id` (empty slice for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Value of the unprefixed/no-namespace attribute `name` on `id`.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name().namespace().is_none() && a.name().local() == name)
            .map(|a| a.value())
    }

    /// Value of the attribute with namespace `ns` and local name `local`.
    pub fn attribute_ns(&self, id: NodeId, ns: &str, local: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name().matches(Some(ns), local))
            .map(|a| a.value())
    }

    /// Namespace declarations written on element `id`.
    pub fn namespace_decls(&self, id: NodeId) -> &[NamespaceDecl] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element {
                namespace_decls, ..
            } => namespace_decls,
            _ => &[],
        }
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeKind::Text(t) = self.kind(n) {
                out.push_str(t);
            }
        }
        out
    }

    /// The text of `id` itself when it is a text or comment node.
    pub fn node_text(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Text(t) | NodeKind::Comment(t) => Some(t),
            _ => None,
        }
    }

    /// Finds the element carrying `id="value"` or `xml:id="value"`,
    /// earliest in document order.
    ///
    /// A map lookup in the memoized [`index`](Document::index) — O(1)
    /// once the index is built, instead of the historical full-document
    /// scan.
    pub fn element_by_id(&self, value: &str) -> Option<NodeId> {
        self.index().element_by_id(value)
    }

    /// 1-based position of `id` among its parent's *element* children that
    /// share its name; used for paths like `/museum/painting[2]`.
    pub fn sibling_index(&self, id: NodeId) -> usize {
        let Some(parent) = self.parent(id) else {
            return 1;
        };
        let name = self.name(id).cloned();
        let mut pos = 0;
        for &c in self.children(parent) {
            if self.is_element(c) && self.name(c).cloned() == name {
                pos += 1;
                if c == id {
                    return pos;
                }
            }
        }
        1
    }

    // ---- mutation -------------------------------------------------------
    //
    // Every method below must call `invalidate_memos` (directly or through
    // `push_node`) before changing the tree, so neither the memoized
    // content hash nor the memoized index can survive a mutation. One
    // choke point keeps the two memos in provable lockstep.

    fn invalidate_memos(&mut self) {
        self.cached_hash = std::sync::OnceLock::new();
        self.cached_index = std::sync::OnceLock::new();
    }

    fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        self.invalidate_memos();
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            parent: Some(parent),
            children: Vec::new(),
            kind,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a new element named `name` under `parent`; returns its id.
    pub fn create_element(&mut self, parent: NodeId, name: impl Into<QName>) -> NodeId {
        self.push_node(
            parent,
            NodeKind::Element {
                name: name.into(),
                attributes: Vec::new(),
                namespace_decls: Vec::new(),
            },
        )
    }

    /// Appends a text node under `parent`.
    pub fn create_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.push_node(parent, NodeKind::Text(text.into()))
    }

    /// Appends a comment under `parent`.
    pub fn create_comment(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.push_node(parent, NodeKind::Comment(text.into()))
    }

    /// Appends a processing instruction under `parent`.
    pub fn create_pi(
        &mut self,
        parent: NodeId,
        target: impl Into<String>,
        data: impl Into<String>,
    ) -> NodeId {
        self.push_node(
            parent,
            NodeKind::ProcessingInstruction {
                target: target.into(),
                data: data.into(),
            },
        )
    }

    /// Sets (or replaces) attribute `name` on element `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn set_attribute(&mut self, id: NodeId, name: impl Into<QName>, value: impl Into<String>) {
        self.invalidate_memos();
        let name = name.into();
        let value = value.into();
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attributes.push(Attribute { name, value });
                }
            }
            _ => panic!("set_attribute on non-element {id}"),
        }
    }

    /// Records a namespace declaration on element `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn declare_namespace(
        &mut self,
        id: NodeId,
        prefix: impl Into<String>,
        uri: impl Into<String>,
    ) {
        self.invalidate_memos();
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element {
                namespace_decls, ..
            } => namespace_decls.push(NamespaceDecl {
                prefix: prefix.into(),
                uri: uri.into(),
            }),
            _ => panic!("declare_namespace on non-element {id}"),
        }
    }

    /// Inserts an existing (detached or appended) node `child` as a child of
    /// `parent` at `index` within the parent's child list.
    ///
    /// The node must already belong to this document; it is detached from its
    /// current parent first.
    ///
    /// # Panics
    ///
    /// Panics if `index > children(parent).len()` after detachment, or when
    /// `child` is the document node.
    pub fn insert_child_at(&mut self, parent: NodeId, index: usize, child: NodeId) {
        assert!(
            child != self.document_node(),
            "cannot re-parent the document node"
        );
        self.detach(child);
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.insert(index, child);
    }

    /// Appends an existing node `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        let index = self.children(parent).len();
        self.insert_child_at(parent, index, child);
    }

    /// Detaches `id` from its parent (the node stays in the arena and can be
    /// re-inserted).
    pub fn detach(&mut self, id: NodeId) {
        self.invalidate_memos();
        if let Some(p) = self.nodes[id.index()].parent.take() {
            self.nodes[p.index()].children.retain(|&c| c != id);
        }
    }

    /// Creates a detached element (no parent); attach it later with
    /// [`append_child`](Document::append_child) or
    /// [`insert_child_at`](Document::insert_child_at).
    pub fn create_detached_element(&mut self, name: impl Into<QName>) -> NodeId {
        self.invalidate_memos();
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            parent: None,
            children: Vec::new(),
            kind: NodeKind::Element {
                name: name.into(),
                attributes: Vec::new(),
                namespace_decls: Vec::new(),
            },
        });
        id
    }

    /// Creates a detached text node; attach it later with
    /// [`append_child`](Document::append_child) or
    /// [`insert_child_at`](Document::insert_child_at).
    pub fn create_detached_text(&mut self, text: impl Into<String>) -> NodeId {
        self.invalidate_memos();
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            parent: None,
            children: Vec::new(),
            kind: NodeKind::Text(text.into()),
        });
        id
    }

    /// Deep-copies the subtree rooted at `src` in `from` into `self` under
    /// `parent`; returns the id of the copy's root.
    pub fn import_subtree(&mut self, parent: NodeId, from: &Document, src: NodeId) -> NodeId {
        let kind = from.nodes[src.index()].kind.clone();
        let copy = match kind {
            NodeKind::Document => panic!("cannot import a document node"),
            other => self.push_node(parent, other),
        };
        for &c in from.children(src) {
            self.import_subtree(copy, from, c);
        }
        copy
    }

    /// Serializes the document with the given options.
    pub fn to_xml(&self, options: &WriteOptions) -> String {
        Writer::new(options).write_document(self)
    }

    /// Serializes with default options (XML declaration, no indentation).
    pub fn to_xml_string(&self) -> String {
        self.to_xml(&WriteOptions::default())
    }

    /// Serializes with two-space indentation, for human-readable output.
    pub fn to_pretty_xml(&self) -> String {
        self.to_xml(&WriteOptions::pretty())
    }

    /// Checks that the document has exactly one root element.
    ///
    /// # Errors
    ///
    /// Returns an error naming the violation when the root is missing.
    pub fn require_root(&self) -> Result<NodeId, ParseXmlError> {
        self.root_element().ok_or_else(|| {
            ParseXmlError::new(
                XmlErrorKind::InvalidDocumentStructure("no root element".into()),
                TextPos::start(),
            )
        })
    }
}

/// Pre-order iterator over a subtree; see [`Document::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = self.doc.children(id);
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        Document::parse(
            "<museum><painter id=\"picasso\"><painting id=\"guitar\">Guitar</painting>\
             <painting id=\"guernica\">Guernica</painting></painter></museum>",
        )
        .unwrap()
    }

    #[test]
    fn root_and_children() {
        let doc = sample();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).unwrap().local(), "museum");
        let painter = doc.first_child_named(root, "painter").unwrap();
        assert_eq!(doc.attribute(painter, "id"), Some("picasso"));
        assert_eq!(doc.children_named(painter, "painting").count(), 2);
    }

    #[test]
    fn descendants_pre_order() {
        let doc = sample();
        let names: Vec<String> = doc
            .descendants(doc.document_node())
            .filter_map(|n| doc.name(n).map(|q| q.local().to_string()))
            .collect();
        assert_eq!(names, ["museum", "painter", "painting", "painting"]);
    }

    #[test]
    fn element_by_id_finds_nested() {
        let doc = sample();
        let g = doc.element_by_id("guernica").unwrap();
        assert_eq!(doc.text_content(g), "Guernica");
        assert!(doc.element_by_id("missing").is_none());
    }

    #[test]
    fn sibling_index_counts_same_name_elements() {
        let doc = sample();
        let g = doc.element_by_id("guernica").unwrap();
        assert_eq!(doc.sibling_index(g), 2);
        let guitar = doc.element_by_id("guitar").unwrap();
        assert_eq!(doc.sibling_index(guitar), 1);
    }

    #[test]
    fn mutation_set_attribute_replaces() {
        let mut doc = Document::new();
        let root = doc.create_element(doc.document_node(), "r");
        doc.set_attribute(root, "k", "1");
        doc.set_attribute(root, "k", "2");
        assert_eq!(doc.attribute(root, "k"), Some("2"));
        assert_eq!(doc.attributes(root).len(), 1);
    }

    #[test]
    fn detach_and_reattach() {
        let mut doc = sample();
        let painter = doc.element_by_id("picasso").unwrap();
        let guitar = doc.element_by_id("guitar").unwrap();
        doc.detach(guitar);
        assert_eq!(doc.children_named(painter, "painting").count(), 1);
        doc.append_child(painter, guitar);
        assert_eq!(doc.children_named(painter, "painting").count(), 2);
        // guitar is now last
        let last = doc.child_elements(painter).last().unwrap();
        assert_eq!(doc.attribute(last, "id"), Some("guitar"));
    }

    #[test]
    fn insert_child_at_position() {
        let mut doc = Document::new();
        let root = doc.create_element(doc.document_node(), "r");
        let a = doc.create_element(root, "a");
        let _b = doc.create_element(root, "b");
        let c = doc.create_detached_element("c");
        doc.insert_child_at(root, 1, c);
        let names: Vec<_> = doc
            .child_elements(root)
            .map(|n| doc.name(n).unwrap().local().to_string())
            .collect();
        assert_eq!(names, ["a", "c", "b"]);
        assert_eq!(doc.parent(c), Some(root));
        assert_eq!(doc.children(root)[0], a);
    }

    #[test]
    fn import_subtree_deep_copies() {
        let src = sample();
        let mut dst = Document::new();
        let root = dst.create_element(dst.document_node(), "copy");
        let painter = src.element_by_id("picasso").unwrap();
        let copied = dst.import_subtree(root, &src, painter);
        assert_eq!(dst.attribute(copied, "id"), Some("picasso"));
        assert_eq!(dst.children_named(copied, "painting").count(), 2);
        assert_eq!(dst.text_content(copied), "GuitarGuernica");
    }

    #[test]
    fn text_content_concatenates() {
        let doc = Document::parse("<a>one<b>two</b>three</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "onetwothree");
    }

    #[test]
    fn empty_document_reports_empty() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert!(doc.root_element().is_none());
        assert!(doc.require_root().is_err());
    }
}
