//! Fluent construction of XML trees.
//!
//! [`ElementBuilder`] builds a subtree declaratively and grafts it onto a
//! [`Document`]. It backs the page generators in `navsep-core` and the advice
//! fragments in `navsep-aspect`, where hand-rolled `create_element` chains
//! would obscure the markup being produced.

use crate::dom::{Document, NodeId};
use crate::name::QName;

/// A detached, declaratively-described element tree.
///
/// # Examples
///
/// ```
/// use navsep_xml::{Document, ElementBuilder};
///
/// let mut doc = Document::new();
/// let parent = doc.document_node();
/// let ul = ElementBuilder::new("ul")
///     .attr("class", "index")
///     .child(ElementBuilder::new("li").text("Guitar"))
///     .child(ElementBuilder::new("li").text("Guernica"))
///     .build(&mut doc, parent);
/// assert_eq!(doc.children(ul).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    name: QName,
    attrs: Vec<(QName, String)>,
    children: Vec<BuilderNode>,
    namespaces: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
enum BuilderNode {
    Element(ElementBuilder),
    Text(String),
    Comment(String),
}

impl ElementBuilder {
    /// Starts building an element named `name` (lexical form; `"p:x"` works).
    pub fn new(name: impl Into<QName>) -> Self {
        ElementBuilder {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            namespaces: Vec::new(),
        }
    }

    /// Adds an attribute.
    pub fn attr(mut self, name: impl Into<QName>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Adds an attribute only when `value` is `Some`.
    pub fn attr_opt(mut self, name: impl Into<QName>, value: Option<String>) -> Self {
        if let Some(v) = value {
            self.attrs.push((name.into(), v));
        }
        self
    }

    /// Declares a namespace (`prefix` may be empty for the default).
    pub fn namespace(mut self, prefix: impl Into<String>, uri: impl Into<String>) -> Self {
        self.namespaces.push((prefix.into(), uri.into()));
        self
    }

    /// Appends a child element.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(BuilderNode::Element(child));
        self
    }

    /// Appends several child elements.
    pub fn children(mut self, children: impl IntoIterator<Item = ElementBuilder>) -> Self {
        self.children
            .extend(children.into_iter().map(BuilderNode::Element));
        self
    }

    /// Appends a text node.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuilderNode::Text(text.into()));
        self
    }

    /// Appends a comment node.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuilderNode::Comment(text.into()));
        self
    }

    /// Materializes the subtree in `doc` under `parent`; returns the new
    /// element's id.
    pub fn build(&self, doc: &mut Document, parent: NodeId) -> NodeId {
        let id = doc.create_element(parent, self.name.clone());
        for (prefix, uri) in &self.namespaces {
            doc.declare_namespace(id, prefix.clone(), uri.clone());
        }
        for (name, value) in &self.attrs {
            doc.set_attribute(id, name.clone(), value.clone());
        }
        for c in &self.children {
            match c {
                BuilderNode::Element(e) => {
                    e.build(doc, id);
                }
                BuilderNode::Text(t) => {
                    doc.create_text(id, t.clone());
                }
                BuilderNode::Comment(t) => {
                    doc.create_comment(id, t.clone());
                }
            }
        }
        id
    }

    /// Materializes the subtree as a *detached* node in `doc` (no parent);
    /// attach it with [`Document::append_child`] or
    /// [`Document::insert_child_at`]. Used by the aspect weaver to graft
    /// advice fragments at arbitrary positions.
    pub fn build_detached(&self, doc: &mut Document) -> NodeId {
        let id = doc.create_detached_element(self.name.clone());
        for (prefix, uri) in &self.namespaces {
            doc.declare_namespace(id, prefix.clone(), uri.clone());
        }
        for (name, value) in &self.attrs {
            doc.set_attribute(id, name.clone(), value.clone());
        }
        for c in &self.children {
            match c {
                BuilderNode::Element(e) => {
                    e.build(doc, id);
                }
                BuilderNode::Text(t) => {
                    doc.create_text(id, t.clone());
                }
                BuilderNode::Comment(t) => {
                    doc.create_comment(id, t.clone());
                }
            }
        }
        id
    }

    /// Materializes the subtree as the root element of a fresh document.
    pub fn build_document(&self) -> Document {
        let mut doc = Document::new();
        let parent = doc.document_node();
        self.build(&mut doc, parent);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let doc = ElementBuilder::new("html")
            .child(
                ElementBuilder::new("body")
                    .attr("class", "page")
                    .child(ElementBuilder::new("h1").text("Guitar"))
                    .comment("nav goes here"),
            )
            .build_document();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).unwrap().local(), "html");
        let body = doc.first_child_named(root, "body").unwrap();
        assert_eq!(doc.attribute(body, "class"), Some("page"));
        let h1 = doc.first_child_named(body, "h1").unwrap();
        assert_eq!(doc.text_content(h1), "Guitar");
    }

    #[test]
    fn attr_opt_skips_none() {
        let doc = ElementBuilder::new("a")
            .attr_opt("present", Some("1".into()))
            .attr_opt("absent", None)
            .build_document();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "present"), Some("1"));
        assert_eq!(doc.attribute(root, "absent"), None);
    }

    #[test]
    fn children_extends() {
        let items = (0..3).map(|i| ElementBuilder::new("li").text(format!("item {i}")));
        let doc = ElementBuilder::new("ul").children(items).build_document();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children_named(root, "li").count(), 3);
    }

    #[test]
    fn namespace_declaration_emitted() {
        let doc = ElementBuilder::new("links")
            .namespace("xlink", "http://www.w3.org/1999/xlink")
            .build_document();
        let out = doc.to_xml_string();
        assert!(out.contains("xmlns:xlink=\"http://www.w3.org/1999/xlink\""));
    }
}
