//! Pull-based XML event reading: source text to a stream of [`XmlEvent`]s.
//!
//! [`EventReader`] is the single lexer in the workspace. The DOM parser
//! ([`Document::parse`](crate::dom::Document::parse)) is a thin consumer
//! that folds the event stream into a tree, and the streaming weaver
//! consumes the same stream directly — so the streaming path tokenizes
//! byte-for-byte identically to the DOM path by construction, including
//! every error kind, message, and position.
//!
//! Covered grammar (the navsep subset of XML 1.0 + Namespaces): elements,
//! attributes, namespace resolution, text, CDATA, comments, processing
//! instructions, the XML declaration, an (ignored) DOCTYPE, predefined
//! entities and character references. DTD-defined entities are rejected
//! rather than silently mis-parsed.
//!
//! Event-model notes:
//!
//! - Text runs are merged across CDATA sections and entity references and
//!   emitted as one [`XmlEvent::Text`] before the next markup boundary,
//!   mirroring the DOM parser's single-text-node merging.
//! - Top-level whitespace between the prolog, root element, and trailing
//!   comments/PIs is discarded (the DOM never materializes it either).
//! - A self-closing tag produces a [`XmlEvent::StartElement`] immediately
//!   followed by its [`XmlEvent::EndElement`].
//! - Namespace declarations are in scope for the element that carries them;
//!   the reader resolves every element and attribute name before emitting
//!   the start event.

use crate::dom::Attribute;
use crate::error::{ParseXmlError, TextPos, XmlErrorKind};
use crate::escape::{is_xml_char, parse_char_ref, predefined_entity};
use crate::name::{is_name_char, is_name_start_char, NamespaceDecl, NamespaceStack, QName};
use crate::reader::MAX_DEPTH;

/// One markup event pulled from an [`EventReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// An element start tag (or the start half of a self-closing tag), with
    /// namespaces already resolved.
    StartElement {
        /// The resolved element name.
        name: QName,
        /// The resolved attributes, in source order.
        attributes: Vec<Attribute>,
        /// Namespace declarations carried on this tag, in source order.
        namespace_decls: Vec<NamespaceDecl>,
    },
    /// An element end tag (or the end half of a self-closing tag).
    EndElement {
        /// The resolved element name, identical to the matching start.
        name: QName,
    },
    /// A merged character-data run (text, CDATA, expanded references).
    Text(String),
    /// A comment (`<!-- … -->`), body verbatim.
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI data (whitespace after the target stripped).
        data: String,
    },
}

/// An open element recorded on the reader's stack.
struct OpenElement {
    /// The lexical (prefixed) tag name, for close-tag matching.
    lexical: String,
    /// The resolved name, re-emitted on [`XmlEvent::EndElement`].
    name: QName,
}

/// A pull parser over XML source text: call [`EventReader::next_event`]
/// until it yields `Ok(None)`.
///
/// ```
/// use navsep_xml::{EventReader, XmlEvent};
/// let mut r = EventReader::new("<a><b/>hi</a>");
/// let mut tags = Vec::new();
/// while let Some(ev) = r.next_event().unwrap() {
///     if let XmlEvent::StartElement { name, .. } = &ev {
///         tags.push(name.local().to_string());
///     }
/// }
/// assert_eq!(tags, ["a", "b"]);
/// ```
pub struct EventReader<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Open elements; `len()` is the current depth.
    stack: Vec<OpenElement>,
    ns: NamespaceStack,
    /// A queued event (the `EndElement` of a self-closing tag).
    pending: Option<XmlEvent>,
    started: bool,
    saw_root: bool,
    finished: bool,
}

impl<'a> EventReader<'a> {
    /// Creates a reader over `src`.
    pub fn new(src: &'a str) -> Self {
        EventReader {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            ns: NamespaceStack::new(),
            pending: None,
            started: false,
            saw_root: false,
            finished: false,
        }
    }

    /// Number of currently open elements (0 between the prolog/epilog and
    /// while positioned at the root start tag).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The current source position (line/column/byte offset).
    pub fn position(&self) -> TextPos {
        self.text_pos()
    }

    /// Pulls the next event, or `Ok(None)` at the end of a well-formed
    /// document.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, ParseXmlError> {
        if let Some(ev) = self.pending.take() {
            if matches!(ev, XmlEvent::EndElement { .. }) {
                self.stack.pop();
            }
            return Ok(Some(ev));
        }
        if self.finished {
            return Ok(None);
        }
        if !self.started {
            self.started = true;
            self.eat("\u{FEFF}"); // byte-order mark
                                  // An XML declaration is "<?xml" followed by whitespace — not a
                                  // PI whose target merely starts with "xml"
                                  // (e.g. <?xml-stylesheet?>).
            if ["<?xml ", "<?xml\t", "<?xml\n", "<?xml\r", "<?xml?"]
                .iter()
                .any(|p| self.starts_with(p))
            {
                self.parse_xml_decl()?;
            }
        }
        if self.stack.is_empty() {
            self.next_top_level()
        } else {
            self.next_in_content()
        }
    }

    // ---- top level (prolog / root / epilog) ------------------------------

    fn next_top_level(&mut self) -> Result<Option<XmlEvent>, ParseXmlError> {
        loop {
            self.skip_ws();
            if self.at_eof() {
                if !self.saw_root {
                    return Err(self.err(XmlErrorKind::InvalidDocumentStructure(
                        "no root element".into(),
                    )));
                }
                self.finished = true;
                return Ok(None);
            }
            if self.starts_with("<!--") {
                return Ok(Some(XmlEvent::Comment(self.parse_comment()?)));
            }
            if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
                continue;
            }
            if self.starts_with("<?") {
                let (target, data) = self.parse_pi()?;
                return Ok(Some(XmlEvent::ProcessingInstruction { target, data }));
            }
            if self.starts_with("<") {
                if self.saw_root {
                    return Err(self.err(XmlErrorKind::InvalidDocumentStructure(
                        "content after root element".into(),
                    )));
                }
                self.saw_root = true;
                return Ok(Some(self.parse_start_tag()?));
            }
            return Err(self.err(XmlErrorKind::InvalidDocumentStructure(
                "character data outside the root element".into(),
            )));
        }
    }

    // ---- element content -------------------------------------------------

    /// Lexes inside an open element: accumulates one text run, stopping (and
    /// emitting it) at the next markup boundary; with no pending text the
    /// boundary itself becomes the event.
    fn next_in_content(&mut self) -> Result<Option<XmlEvent>, ParseXmlError> {
        let mut text = String::new();
        loop {
            if self.at_eof() {
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
            if self.starts_with("</") {
                if !text.is_empty() {
                    return Ok(Some(XmlEvent::Text(text)));
                }
                return Ok(Some(self.parse_end_tag()?));
            }
            if self.starts_with("<![CDATA[") {
                self.eat("<![CDATA[");
                loop {
                    if self.eat("]]>") {
                        break;
                    }
                    match self.bump() {
                        Some(c) => text.push(c),
                        None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                    }
                }
                continue;
            }
            if self.starts_with("<!--") {
                if !text.is_empty() {
                    return Ok(Some(XmlEvent::Text(text)));
                }
                return Ok(Some(XmlEvent::Comment(self.parse_comment()?)));
            }
            if self.starts_with("<?") {
                if !text.is_empty() {
                    return Ok(Some(XmlEvent::Text(text)));
                }
                let (target, data) = self.parse_pi()?;
                return Ok(Some(XmlEvent::ProcessingInstruction { target, data }));
            }
            if self.starts_with("<") {
                if !text.is_empty() {
                    return Ok(Some(XmlEvent::Text(text)));
                }
                return Ok(Some(self.parse_start_tag()?));
            }
            if self.starts_with("]]>") {
                return Err(self.err(XmlErrorKind::InvalidToken(
                    "']]>' is not allowed in character data".into(),
                )));
            }
            match self.peek() {
                Some('&') => text.push(self.parse_reference()?),
                Some(c) => {
                    self.check_char(c)?;
                    self.bump();
                    text.push(c);
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    // ---- tags ------------------------------------------------------------

    fn parse_start_tag(&mut self) -> Result<XmlEvent, ParseXmlError> {
        if self.stack.len() + 1 > MAX_DEPTH {
            return Err(self.err(XmlErrorKind::TooDeep(MAX_DEPTH)));
        }
        self.expect("<")?;
        let lexical = self.parse_name_token()?;
        let (prefix, local) = QName::split_lexical(&lexical)
            .ok_or_else(|| self.err(XmlErrorKind::InvalidName(lexical.clone())))?;
        let prefix = prefix.to_string();
        let local = local.to_string();

        // Collect raw attributes first; namespace decls must be in scope
        // before prefixes (including the element's own) are resolved.
        let mut raw_attrs: Vec<(String, String, String)> = Vec::new(); // (prefix, local, value)
        let mut decls: Vec<(String, String)> = Vec::new(); // (prefix, uri)
        let mut self_closing = false;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect(">")?;
                    self_closing = true;
                    break;
                }
                Some(c) if is_name_start_char(c) => {
                    let attr_name = self.parse_name_token()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if attr_name == "xmlns" {
                        decls.push((String::new(), value));
                    } else if let Some(rest) = attr_name.strip_prefix("xmlns:") {
                        if rest.is_empty() {
                            return Err(self.err(XmlErrorKind::InvalidName(attr_name)));
                        }
                        decls.push((rest.to_string(), value));
                    } else {
                        let (ap, al) = QName::split_lexical(&attr_name).ok_or_else(|| {
                            self.err(XmlErrorKind::InvalidName(attr_name.clone()))
                        })?;
                        raw_attrs.push((ap.to_string(), al.to_string(), value));
                    }
                }
                Some(c) => {
                    return Err(self.err(XmlErrorKind::UnexpectedChar {
                        expected: "an attribute name, '>' or '/>'".into(),
                        found: c,
                    }))
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }

        self.ns.push();
        for (p, uri) in &decls {
            self.ns.declare(p.clone(), uri.clone());
        }

        let name = match self.resolve_element_name(&prefix, &local) {
            Ok(name) => name,
            Err(e) => {
                self.ns.pop();
                return Err(e);
            }
        };
        let mut attributes: Vec<Attribute> = Vec::with_capacity(raw_attrs.len());
        for (ap, al, value) in raw_attrs {
            let attr_name = match self.resolve_attr_name(&ap, &al) {
                Ok(n) => n,
                Err(e) => {
                    self.ns.pop();
                    return Err(e);
                }
            };
            if attributes.iter().any(|a| {
                a.name().local() == attr_name.local()
                    && a.name().namespace() == attr_name.namespace()
            }) {
                self.ns.pop();
                return Err(self.err(XmlErrorKind::DuplicateAttribute(attr_name.as_markup())));
            }
            attributes.push(Attribute::new(attr_name, value));
        }
        let namespace_decls = decls
            .into_iter()
            .map(|(prefix, uri)| NamespaceDecl { prefix, uri })
            .collect();

        if self_closing {
            self.ns.pop();
            // Queue the matching end; `pending` handling pops the stack when
            // it is delivered.
            self.stack.push(OpenElement {
                lexical,
                name: name.clone(),
            });
            self.pending = Some(XmlEvent::EndElement { name: name.clone() });
        } else {
            self.stack.push(OpenElement {
                lexical,
                name: name.clone(),
            });
        }
        Ok(XmlEvent::StartElement {
            name,
            attributes,
            namespace_decls,
        })
    }

    fn parse_end_tag(&mut self) -> Result<XmlEvent, ParseXmlError> {
        self.expect("</")?;
        let close = self.parse_name_token()?;
        let open = self.stack.last().expect("end tag only inside content");
        if close != open.lexical {
            let expected = open.lexical.clone();
            self.ns.pop();
            return Err(self.err(XmlErrorKind::MismatchedTag {
                expected,
                found: close,
            }));
        }
        self.skip_ws();
        self.expect(">")?;
        self.ns.pop();
        let open = self.stack.pop().expect("checked non-empty above");
        Ok(XmlEvent::EndElement { name: open.name })
    }

    // ---- cursor ----------------------------------------------------------

    fn text_pos(&self) -> TextPos {
        TextPos::new(self.line, self.col, self.pos)
    }

    fn err(&self, kind: XmlErrorKind) -> ParseXmlError {
        ParseXmlError::new(kind, self.text_pos())
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseXmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(found) => Err(self.err(XmlErrorKind::UnexpectedChar {
                    expected: format!("{s:?}"),
                    found,
                })),
                None => Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    // ---- prolog pieces ---------------------------------------------------

    fn parse_xml_decl(&mut self) -> Result<(), ParseXmlError> {
        self.expect("<?xml")?;
        // Tolerantly scan to the closing "?>"; contents (version/encoding)
        // do not affect this in-memory parser.
        loop {
            if self.eat("?>") {
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseXmlError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                Some(_) => {}
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
        Ok(())
    }

    fn parse_comment(&mut self) -> Result<String, ParseXmlError> {
        self.expect("<!--")?;
        let mut out = String::new();
        loop {
            if self.starts_with("--") {
                if self.eat("-->") {
                    return Ok(out);
                }
                return Err(self.err(XmlErrorKind::InvalidToken(
                    "'--' is not allowed inside a comment".into(),
                )));
            }
            match self.bump() {
                Some(c) => out.push(c),
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_pi(&mut self) -> Result<(String, String), ParseXmlError> {
        self.expect("<?")?;
        let target = self.parse_name_token()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err(XmlErrorKind::InvalidToken(
                "processing-instruction target may not be 'xml'".into(),
            )));
        }
        self.skip_ws();
        let mut data = String::new();
        loop {
            if self.eat("?>") {
                return Ok((target, data));
            }
            match self.bump() {
                Some(c) => data.push(c),
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_name_token(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start_char(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(self.err(XmlErrorKind::UnexpectedChar {
                    expected: "a name".into(),
                    found: c,
                }))
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    // ---- names and values ------------------------------------------------

    fn resolve_element_name(&self, prefix: &str, local: &str) -> Result<QName, ParseXmlError> {
        if prefix.is_empty() {
            Ok(match self.ns.default_namespace() {
                Some(uri) => QName::in_default_namespace(local, uri),
                None => QName::new(local),
            })
        } else {
            match self.ns.resolve(prefix) {
                Some(uri) => Ok(QName::with_namespace(prefix, local, uri)),
                None => Err(self.err(XmlErrorKind::UnboundPrefix(prefix.to_string()))),
            }
        }
    }

    fn resolve_attr_name(&self, prefix: &str, local: &str) -> Result<QName, ParseXmlError> {
        if prefix.is_empty() {
            // Default namespace does not apply to attributes.
            Ok(QName::new(local))
        } else {
            match self.ns.resolve(prefix) {
                Some(uri) => Ok(QName::with_namespace(prefix, local, uri)),
                None => Err(self.err(XmlErrorKind::UnboundPrefix(prefix.to_string()))),
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseXmlError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            Some(c) => {
                return Err(self.err(XmlErrorKind::UnexpectedChar {
                    expected: "'\"' or \"'\"".into(),
                    found: c,
                }))
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some('<') => {
                    return Err(self.err(XmlErrorKind::InvalidToken(
                        "'<' is not allowed in attribute values".into(),
                    )))
                }
                Some('&') => out.push(self.parse_reference()?),
                // Attribute-value normalization: whitespace -> space.
                Some('\t' | '\n' | '\r') => {
                    self.bump();
                    out.push(' ');
                }
                Some(c) => {
                    self.check_char(c)?;
                    self.bump();
                    out.push(c);
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_reference(&mut self) -> Result<char, ParseXmlError> {
        self.expect("&")?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != ';') {
            self.bump();
            if self.pos - start > 32 {
                return Err(self.err(XmlErrorKind::InvalidToken(
                    "unterminated entity reference".into(),
                )));
            }
        }
        let body = self.src[start..self.pos].to_string();
        self.expect(";")?;
        if let Some(stripped) = body.strip_prefix('#') {
            parse_char_ref(&format!("#{stripped}"))
                .ok_or_else(|| self.err(XmlErrorKind::InvalidCharRef(stripped.to_string())))
        } else {
            predefined_entity(&body)
                .ok_or_else(|| self.err(XmlErrorKind::UnknownEntity(body.clone())))
        }
    }

    fn check_char(&self, c: char) -> Result<(), ParseXmlError> {
        if is_xml_char(c) {
            Ok(())
        } else {
            Err(self.err(XmlErrorKind::InvalidToken(format!(
                "character U+{:04X} is not allowed in XML",
                c as u32
            ))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<XmlEvent> {
        let mut r = EventReader::new(src);
        let mut out = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn self_closing_yields_start_then_end() {
        let evs = events("<a/>");
        assert_eq!(evs.len(), 2);
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name.local() == "a"));
        assert!(matches!(&evs[1], XmlEvent::EndElement { name } if name.local() == "a"));
    }

    #[test]
    fn text_runs_merge_across_cdata_and_references() {
        let evs = events("<a>x<![CDATA[y]]>&amp;z</a>");
        assert_eq!(evs.len(), 3);
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "xy&z"));
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut r = EventReader::new("<a><b/></a>");
        assert_eq!(r.depth(), 0);
        r.next_event().unwrap(); // <a>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b>
        assert_eq!(r.depth(), 2);
        r.next_event().unwrap(); // </b>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // </a>
        assert_eq!(r.depth(), 0);
        assert!(r.next_event().unwrap().is_none());
    }

    #[test]
    fn namespace_decls_and_resolution_are_streamed() {
        let evs = events("<r xmlns:x=\"urn:x\"><x:a y=\"1\"/></r>");
        match &evs[0] {
            XmlEvent::StartElement {
                namespace_decls, ..
            } => {
                assert_eq!(namespace_decls.len(), 1);
                assert_eq!(namespace_decls[0].prefix, "x");
                assert_eq!(namespace_decls[0].uri, "urn:x");
            }
            other => panic!("expected start, got {other:?}"),
        }
        match &evs[1] {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                assert_eq!(name.namespace(), Some("urn:x"));
                assert_eq!(attributes[0].name().local(), "y");
                assert_eq!(attributes[0].value(), "1");
            }
            other => panic!("expected start, got {other:?}"),
        }
    }

    #[test]
    fn top_level_comments_and_pis_stream_around_the_root() {
        let evs = events("<!-- pre --><a/><?post data?>");
        assert!(matches!(&evs[0], XmlEvent::Comment(c) if c == " pre "));
        assert!(matches!(
            &evs[3],
            XmlEvent::ProcessingInstruction { target, .. } if target == "post"
        ));
    }

    #[test]
    fn mismatched_close_reports_expected_open_tag() {
        let mut r = EventReader::new("<a><b></c></a>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let err = r.next_event().unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::MismatchedTag { expected, found } if expected == "b" && found == "c"
        ));
    }

    #[test]
    fn too_deep_is_rejected_at_the_offending_tag() {
        let mut src = String::new();
        for i in 0..=MAX_DEPTH {
            src.push_str(&format!("<e{i}>"));
        }
        let mut r = EventReader::new(&src);
        let mut err = None;
        for _ in 0..=MAX_DEPTH {
            match r.next_event() {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            err.expect("must reject").kind(),
            XmlErrorKind::TooDeep(d) if *d == MAX_DEPTH
        ));
    }
}
