//! The XML parser: source text to [`Document`].
//!
//! A hand-written recursive-descent parser covering the subset of XML 1.0 +
//! Namespaces needed by the navsep pipeline: elements, attributes, namespace
//! resolution, text, CDATA, comments, processing instructions, the XML
//! declaration, an (ignored) DOCTYPE, predefined entities and character
//! references. DTD-defined entities are rejected rather than silently
//! mis-parsed.

use crate::dom::{Attribute, Document, NodeId};
use crate::error::{ParseXmlError, TextPos, XmlErrorKind};
use crate::escape::{is_xml_char, parse_char_ref, predefined_entity};
use crate::name::{is_name_char, is_name_start_char, NamespaceStack, QName};

/// Maximum element nesting depth. Documents deeper than this are rejected
/// with [`XmlErrorKind::TooDeep`] instead of risking stack exhaustion in the
/// recursive-descent parser.
pub const MAX_DEPTH: usize = 128;

/// Parses `text` into a [`Document`]. Exposed as [`Document::parse`].
pub(crate) fn parse_document(text: &str) -> Result<Document, ParseXmlError> {
    let mut parser = Parser::new(text);
    parser.parse()
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    depth: usize,
    doc: Document,
    ns: NamespaceStack,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            depth: 0,
            doc: Document::new(),
            ns: NamespaceStack::new(),
        }
    }

    fn text_pos(&self) -> TextPos {
        TextPos::new(self.line, self.col, self.pos)
    }

    fn err(&self, kind: XmlErrorKind) -> ParseXmlError {
        ParseXmlError::new(kind, self.text_pos())
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseXmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(found) => Err(self.err(XmlErrorKind::UnexpectedChar {
                    expected: format!("{s:?}"),
                    found,
                })),
                None => Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    // ---- top level -------------------------------------------------------

    fn parse(&mut self) -> Result<Document, ParseXmlError> {
        self.eat("\u{FEFF}"); // byte-order mark
                              // An XML declaration is "<?xml" followed by whitespace — not a PI
                              // whose target merely starts with "xml" (e.g. <?xml-stylesheet?>).
        if ["<?xml ", "<?xml\t", "<?xml\n", "<?xml\r", "<?xml?"]
            .iter()
            .any(|p| self.starts_with(p))
        {
            self.parse_xml_decl()?;
        }
        let mut saw_root = false;
        loop {
            self.skip_ws();
            if self.at_eof() {
                break;
            }
            if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                let parent = self.doc.document_node();
                self.doc.create_comment(parent, c);
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                let (target, data) = self.parse_pi()?;
                let parent = self.doc.document_node();
                self.doc.create_pi(parent, target, data);
            } else if self.starts_with("<") {
                if saw_root {
                    return Err(self.err(XmlErrorKind::InvalidDocumentStructure(
                        "content after root element".into(),
                    )));
                }
                let parent = self.doc.document_node();
                self.parse_element(parent)?;
                saw_root = true;
            } else {
                return Err(self.err(XmlErrorKind::InvalidDocumentStructure(
                    "character data outside the root element".into(),
                )));
            }
        }
        if !saw_root {
            return Err(self.err(XmlErrorKind::InvalidDocumentStructure(
                "no root element".into(),
            )));
        }
        Ok(std::mem::take(&mut self.doc))
    }

    fn parse_xml_decl(&mut self) -> Result<(), ParseXmlError> {
        self.expect("<?xml")?;
        // Tolerantly scan to the closing "?>"; contents (version/encoding)
        // do not affect this in-memory parser.
        loop {
            if self.eat("?>") {
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseXmlError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                Some(_) => {}
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
        Ok(())
    }

    fn parse_comment(&mut self) -> Result<String, ParseXmlError> {
        self.expect("<!--")?;
        let mut out = String::new();
        loop {
            if self.starts_with("--") {
                if self.eat("-->") {
                    return Ok(out);
                }
                return Err(self.err(XmlErrorKind::InvalidToken(
                    "'--' is not allowed inside a comment".into(),
                )));
            }
            match self.bump() {
                Some(c) => out.push(c),
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_pi(&mut self) -> Result<(String, String), ParseXmlError> {
        self.expect("<?")?;
        let target = self.parse_name_token()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err(XmlErrorKind::InvalidToken(
                "processing-instruction target may not be 'xml'".into(),
            )));
        }
        self.skip_ws();
        let mut data = String::new();
        loop {
            if self.eat("?>") {
                return Ok((target, data));
            }
            match self.bump() {
                Some(c) => data.push(c),
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_name_token(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start_char(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(self.err(XmlErrorKind::UnexpectedChar {
                    expected: "a name".into(),
                    found: c,
                }))
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    // ---- elements --------------------------------------------------------

    fn parse_element(&mut self, parent: NodeId) -> Result<NodeId, ParseXmlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(XmlErrorKind::TooDeep(MAX_DEPTH)));
        }
        let result = self.parse_element_inner(parent);
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self, parent: NodeId) -> Result<NodeId, ParseXmlError> {
        self.expect("<")?;
        let lexical = self.parse_name_token()?;
        let (prefix, local) = QName::split_lexical(&lexical)
            .ok_or_else(|| self.err(XmlErrorKind::InvalidName(lexical.clone())))?;
        let prefix = prefix.to_string();
        let local = local.to_string();

        // Collect raw attributes first; namespace decls must be in scope
        // before prefixes (including the element's own) are resolved.
        let mut raw_attrs: Vec<(String, String, String)> = Vec::new(); // (prefix, local, value)
        let mut decls: Vec<(String, String)> = Vec::new(); // (prefix, uri)
        let mut self_closing = false;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect(">")?;
                    self_closing = true;
                    break;
                }
                Some(c) if is_name_start_char(c) => {
                    let attr_name = self.parse_name_token()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if attr_name == "xmlns" {
                        decls.push((String::new(), value));
                    } else if let Some(rest) = attr_name.strip_prefix("xmlns:") {
                        if rest.is_empty() {
                            return Err(self.err(XmlErrorKind::InvalidName(attr_name)));
                        }
                        decls.push((rest.to_string(), value));
                    } else {
                        let (ap, al) = QName::split_lexical(&attr_name).ok_or_else(|| {
                            self.err(XmlErrorKind::InvalidName(attr_name.clone()))
                        })?;
                        raw_attrs.push((ap.to_string(), al.to_string(), value));
                    }
                }
                Some(c) => {
                    return Err(self.err(XmlErrorKind::UnexpectedChar {
                        expected: "an attribute name, '>' or '/>'".into(),
                        found: c,
                    }))
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }

        self.ns.push();
        for (p, uri) in &decls {
            self.ns.declare(p.clone(), uri.clone());
        }

        let element_name = self.resolve_element_name(&prefix, &local)?;
        let id = self.doc.create_element(parent, element_name);
        for (p, uri) in decls {
            self.doc.declare_namespace(id, p, uri);
        }
        let mut resolved: Vec<Attribute> = Vec::with_capacity(raw_attrs.len());
        for (ap, al, value) in raw_attrs {
            let name = self.resolve_attr_name(&ap, &al)?;
            if resolved.iter().any(|a| {
                a.name().local() == name.local() && a.name().namespace() == name.namespace()
            }) {
                return Err(self.err(XmlErrorKind::DuplicateAttribute(name.as_markup())));
            }
            resolved.push(Attribute::new(name, value));
        }
        for a in resolved {
            self.doc
                .set_attribute(id, a.name().clone(), a.value().to_string());
        }

        if !self_closing {
            self.parse_content(id)?;
            // closing tag
            let close = self.parse_name_token()?;
            if close != lexical {
                self.ns.pop();
                return Err(self.err(XmlErrorKind::MismatchedTag {
                    expected: lexical,
                    found: close,
                }));
            }
            self.skip_ws();
            self.expect(">")?;
        }
        self.ns.pop();
        Ok(id)
    }

    fn resolve_element_name(&self, prefix: &str, local: &str) -> Result<QName, ParseXmlError> {
        if prefix.is_empty() {
            Ok(match self.ns.default_namespace() {
                Some(uri) => QName::in_default_namespace(local, uri),
                None => QName::new(local),
            })
        } else {
            match self.ns.resolve(prefix) {
                Some(uri) => Ok(QName::with_namespace(prefix, local, uri)),
                None => Err(self.err(XmlErrorKind::UnboundPrefix(prefix.to_string()))),
            }
        }
    }

    fn resolve_attr_name(&self, prefix: &str, local: &str) -> Result<QName, ParseXmlError> {
        if prefix.is_empty() {
            // Default namespace does not apply to attributes.
            Ok(QName::new(local))
        } else {
            match self.ns.resolve(prefix) {
                Some(uri) => Ok(QName::with_namespace(prefix, local, uri)),
                None => Err(self.err(XmlErrorKind::UnboundPrefix(prefix.to_string()))),
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseXmlError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            Some(c) => {
                return Err(self.err(XmlErrorKind::UnexpectedChar {
                    expected: "'\"' or \"'\"".into(),
                    found: c,
                }))
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some('<') => {
                    return Err(self.err(XmlErrorKind::InvalidToken(
                        "'<' is not allowed in attribute values".into(),
                    )))
                }
                Some('&') => out.push(self.parse_reference()?),
                // Attribute-value normalization: whitespace -> space.
                Some('\t' | '\n' | '\r') => {
                    self.bump();
                    out.push(' ');
                }
                Some(c) => {
                    self.check_char(c)?;
                    self.bump();
                    out.push(c);
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_reference(&mut self) -> Result<char, ParseXmlError> {
        self.expect("&")?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != ';') {
            self.bump();
            if self.pos - start > 32 {
                return Err(self.err(XmlErrorKind::InvalidToken(
                    "unterminated entity reference".into(),
                )));
            }
        }
        let body = self.src[start..self.pos].to_string();
        self.expect(";")?;
        if let Some(stripped) = body.strip_prefix('#') {
            parse_char_ref(&format!("#{stripped}"))
                .ok_or_else(|| self.err(XmlErrorKind::InvalidCharRef(stripped.to_string())))
        } else {
            predefined_entity(&body)
                .ok_or_else(|| self.err(XmlErrorKind::UnknownEntity(body.clone())))
        }
    }

    fn check_char(&self, c: char) -> Result<(), ParseXmlError> {
        if is_xml_char(c) {
            Ok(())
        } else {
            Err(self.err(XmlErrorKind::InvalidToken(format!(
                "character U+{:04X} is not allowed in XML",
                c as u32
            ))))
        }
    }

    /// Parses element content until the matching `</` is consumed.
    fn parse_content(&mut self, parent: NodeId) -> Result<(), ParseXmlError> {
        let mut text = String::new();
        loop {
            if self.at_eof() {
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
            if self.starts_with("</") {
                self.flush_text(parent, &mut text);
                self.expect("</")?;
                return Ok(());
            }
            if self.starts_with("<![CDATA[") {
                self.eat("<![CDATA[");
                loop {
                    if self.eat("]]>") {
                        break;
                    }
                    match self.bump() {
                        Some(c) => text.push(c),
                        None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                    }
                }
                continue;
            }
            if self.starts_with("<!--") {
                self.flush_text(parent, &mut text);
                let c = self.parse_comment()?;
                self.doc.create_comment(parent, c);
                continue;
            }
            if self.starts_with("<?") {
                self.flush_text(parent, &mut text);
                let (target, data) = self.parse_pi()?;
                self.doc.create_pi(parent, target, data);
                continue;
            }
            if self.starts_with("<") {
                self.flush_text(parent, &mut text);
                self.parse_element(parent)?;
                continue;
            }
            if self.starts_with("]]>") {
                return Err(self.err(XmlErrorKind::InvalidToken(
                    "']]>' is not allowed in character data".into(),
                )));
            }
            match self.peek() {
                Some('&') => text.push(self.parse_reference()?),
                Some(c) => {
                    self.check_char(c)?;
                    self.bump();
                    text.push(c);
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn flush_text(&mut self, parent: NodeId, text: &mut String) {
        if !text.is_empty() {
            let t = std::mem::take(text);
            self.doc.create_text(parent, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::dom::{Document, NodeKind};
    use crate::error::XmlErrorKind;
    use crate::name::XML_NS;

    #[test]
    fn parses_minimal_document() {
        let doc = Document::parse("<a/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()).unwrap().local(), "a");
    }

    #[test]
    fn parses_declaration_and_doctype() {
        let doc = Document::parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<a/>",
        )
        .unwrap();
        assert!(doc.root_element().is_some());
    }

    #[test]
    fn resolves_namespaces() {
        let doc =
            Document::parse("<r xmlns=\"urn:d\" xmlns:x=\"urn:x\"><x:a y=\"1\" x:z=\"2\"/></r>")
                .unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).unwrap().namespace(), Some("urn:d"));
        let a = doc.child_elements(root).next().unwrap();
        let name = doc.name(a).unwrap();
        assert_eq!(name.namespace(), Some("urn:x"));
        assert_eq!(name.prefix(), "x");
        // Unprefixed attribute is in *no* namespace even with a default ns.
        assert_eq!(doc.attribute(a, "y"), Some("1"));
        assert_eq!(doc.attribute_ns(a, "urn:x", "z"), Some("2"));
    }

    #[test]
    fn unbound_prefix_is_an_error() {
        let err = Document::parse("<x:a/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnboundPrefix(p) if p == "x"));
    }

    #[test]
    fn mismatched_tags_error_with_position() {
        let err = Document::parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(err.pos().line, 2);
    }

    #[test]
    fn entities_and_char_refs_expand() {
        let doc = Document::parse("<a attr=\"&lt;&#65;&gt;\">&amp;&#x42;</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "attr"), Some("<A>"));
        assert_eq!(doc.text_content(root), "&B");
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = Document::parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnknownEntity(e) if e == "nbsp"));
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = Document::parse("<a><![CDATA[<not> & markup]]></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "<not> & markup");
    }

    #[test]
    fn comments_and_pis_preserved() {
        let doc = Document::parse("<a><!-- note --><?php echo ?></a>").unwrap();
        let root = doc.root_element().unwrap();
        let kinds: Vec<_> = doc
            .children(root)
            .iter()
            .map(|&c| doc.kind(c).clone())
            .collect();
        assert!(matches!(&kinds[0], NodeKind::Comment(c) if c == " note "));
        assert!(
            matches!(&kinds[1], NodeKind::ProcessingInstruction { target, data } if target == "php" && data == "echo ")
        );
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let err = Document::parse("<a><!-- bad -- comment --></a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::InvalidToken(_)));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Document::parse("<a k=\"1\" k=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn duplicate_attribute_by_namespace_rejected() {
        // Same expanded name through two prefixes.
        let err = Document::parse("<a xmlns:p=\"urn:x\" xmlns:q=\"urn:x\" p:k=\"1\" q:k=\"2\"/>")
            .unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn content_after_root_rejected() {
        let err = Document::parse("<a/><b/>").unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::InvalidDocumentStructure(_)
        ));
    }

    #[test]
    fn attribute_value_normalization() {
        let doc = Document::parse("<a k=\"one\ntwo\tthree\"/>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "k"), Some("one two three"));
    }

    #[test]
    fn xml_id_attribute_resolves_namespace() {
        let doc = Document::parse("<a xml:id=\"root\"/>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute_ns(root, XML_NS, "id"), Some("root"));
        assert_eq!(doc.element_by_id("root"), Some(root));
    }

    #[test]
    fn cdata_split_sections_merge_into_one_text_run() {
        let doc = Document::parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        let root = doc.root_element().unwrap();
        // One merged text node: "xyz".
        assert_eq!(doc.children(root).len(), 1);
        assert_eq!(doc.text_content(root), "xyz");
    }

    #[test]
    fn whitespace_only_document_is_error() {
        assert!(Document::parse("   \n  ").is_err());
        assert!(Document::parse("").is_err());
    }

    #[test]
    fn bom_is_tolerated() {
        let doc = Document::parse("\u{FEFF}<a/>").unwrap();
        assert!(doc.root_element().is_some());
    }

    #[test]
    fn nested_default_namespace_undeclaration() {
        let doc = Document::parse("<a xmlns=\"urn:d\"><b xmlns=\"\"/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.child_elements(root).next().unwrap();
        assert_eq!(doc.name(b).unwrap().namespace(), None);
    }
}
