//! The XML parser: source text to [`Document`].
//!
//! Since the streaming-weave work, all lexing lives in the pull-based
//! [`EventReader`]; this module is a thin
//! consumer that folds the event stream into a [`Document`] tree. The DOM
//! path and the streaming path therefore tokenize identically by
//! construction — same grammar subset, same error kinds, messages, and
//! positions.

use crate::dom::Document;
use crate::error::ParseXmlError;
use crate::events::{EventReader, XmlEvent};

/// Maximum element nesting depth. Documents deeper than this are rejected
/// with [`XmlErrorKind::TooDeep`](crate::error::XmlErrorKind::TooDeep)
/// instead of risking unbounded stack growth downstream.
pub const MAX_DEPTH: usize = 128;

/// Parses `text` into a [`Document`]. Exposed as [`Document::parse`].
pub(crate) fn parse_document(text: &str) -> Result<Document, ParseXmlError> {
    let mut reader = EventReader::new(text);
    let mut doc = Document::new();
    let mut stack = vec![doc.document_node()];
    while let Some(event) = reader.next_event()? {
        let parent = *stack.last().expect("document node never popped");
        match event {
            XmlEvent::StartElement {
                name,
                attributes,
                namespace_decls,
            } => {
                let id = doc.create_element(parent, name);
                for d in namespace_decls {
                    doc.declare_namespace(id, d.prefix, d.uri);
                }
                for a in attributes {
                    doc.set_attribute(id, a.name().clone(), a.value().to_string());
                }
                stack.push(id);
            }
            XmlEvent::EndElement { .. } => {
                stack.pop();
            }
            XmlEvent::Text(t) => {
                doc.create_text(parent, t);
            }
            XmlEvent::Comment(c) => {
                doc.create_comment(parent, c);
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                doc.create_pi(parent, target, data);
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use crate::dom::{Document, NodeKind};
    use crate::error::XmlErrorKind;
    use crate::name::XML_NS;

    #[test]
    fn parses_minimal_document() {
        let doc = Document::parse("<a/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()).unwrap().local(), "a");
    }

    #[test]
    fn parses_declaration_and_doctype() {
        let doc = Document::parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<a/>",
        )
        .unwrap();
        assert!(doc.root_element().is_some());
    }

    #[test]
    fn resolves_namespaces() {
        let doc =
            Document::parse("<r xmlns=\"urn:d\" xmlns:x=\"urn:x\"><x:a y=\"1\" x:z=\"2\"/></r>")
                .unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).unwrap().namespace(), Some("urn:d"));
        let a = doc.child_elements(root).next().unwrap();
        let name = doc.name(a).unwrap();
        assert_eq!(name.namespace(), Some("urn:x"));
        assert_eq!(name.prefix(), "x");
        // Unprefixed attribute is in *no* namespace even with a default ns.
        assert_eq!(doc.attribute(a, "y"), Some("1"));
        assert_eq!(doc.attribute_ns(a, "urn:x", "z"), Some("2"));
    }

    #[test]
    fn unbound_prefix_is_an_error() {
        let err = Document::parse("<x:a/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnboundPrefix(p) if p == "x"));
    }

    #[test]
    fn mismatched_tags_error_with_position() {
        let err = Document::parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(err.pos().line, 2);
    }

    #[test]
    fn entities_and_char_refs_expand() {
        let doc = Document::parse("<a attr=\"&lt;&#65;&gt;\">&amp;&#x42;</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "attr"), Some("<A>"));
        assert_eq!(doc.text_content(root), "&B");
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = Document::parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnknownEntity(e) if e == "nbsp"));
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = Document::parse("<a><![CDATA[<not> & markup]]></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "<not> & markup");
    }

    #[test]
    fn comments_and_pis_preserved() {
        let doc = Document::parse("<a><!-- note --><?php echo ?></a>").unwrap();
        let root = doc.root_element().unwrap();
        let kinds: Vec<_> = doc
            .children(root)
            .iter()
            .map(|&c| doc.kind(c).clone())
            .collect();
        assert!(matches!(&kinds[0], NodeKind::Comment(c) if c == " note "));
        assert!(
            matches!(&kinds[1], NodeKind::ProcessingInstruction { target, data } if target == "php" && data == "echo ")
        );
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let err = Document::parse("<a><!-- bad -- comment --></a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::InvalidToken(_)));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Document::parse("<a k=\"1\" k=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn duplicate_attribute_by_namespace_rejected() {
        // Same expanded name through two prefixes.
        let err = Document::parse("<a xmlns:p=\"urn:x\" xmlns:q=\"urn:x\" p:k=\"1\" q:k=\"2\"/>")
            .unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn content_after_root_rejected() {
        let err = Document::parse("<a/><b/>").unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::InvalidDocumentStructure(_)
        ));
    }

    #[test]
    fn attribute_value_normalization() {
        let doc = Document::parse("<a k=\"one\ntwo\tthree\"/>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "k"), Some("one two three"));
    }

    #[test]
    fn xml_id_attribute_resolves_namespace() {
        let doc = Document::parse("<a xml:id=\"root\"/>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute_ns(root, XML_NS, "id"), Some("root"));
        assert_eq!(doc.element_by_id("root"), Some(root));
    }

    #[test]
    fn cdata_split_sections_merge_into_one_text_run() {
        let doc = Document::parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        let root = doc.root_element().unwrap();
        // One merged text node: "xyz".
        assert_eq!(doc.children(root).len(), 1);
        assert_eq!(doc.text_content(root), "xyz");
    }

    #[test]
    fn whitespace_only_document_is_error() {
        assert!(Document::parse("   \n  ").is_err());
        assert!(Document::parse("").is_err());
    }

    #[test]
    fn bom_is_tolerated() {
        let doc = Document::parse("\u{FEFF}<a/>").unwrap();
        assert!(doc.root_element().is_some());
    }

    #[test]
    fn nested_default_namespace_undeclaration() {
        let doc = Document::parse("<a xmlns=\"urn:d\"><b xmlns=\"\"/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.child_elements(root).next().unwrap();
        assert_eq!(doc.name(b).unwrap().namespace(), None);
    }
}
