//! Serialization of a [`Document`] back to XML text.
//!
//! The tag-level helpers ([`XML_DECLARATION`], [`write_start_tag_open`],
//! [`write_comment_markup`], [`write_pi_markup`]) are shared with the
//! streaming weaver so incrementally-emitted bytes are formatted by the
//! exact same code as a DOM serialization.

use crate::dom::{Attribute, Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};
use crate::name::{NamespaceDecl, QName};

/// The declaration emitted at the top of every full document serialization.
pub const XML_DECLARATION: &str = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";

/// Writes the open half of a start tag — `<name`, namespace declarations,
/// and attributes, *without* the closing `>` or `/>` — exactly as
/// [`Writer`] formats it.
pub fn write_start_tag_open(
    out: &mut String,
    name: &QName,
    namespace_decls: &[NamespaceDecl],
    attributes: &[Attribute],
) {
    out.push('<');
    out.push_str(&name.as_markup());
    for d in namespace_decls {
        if d.prefix.is_empty() {
            out.push_str(" xmlns=\"");
        } else {
            out.push_str(" xmlns:");
            out.push_str(&d.prefix);
            out.push_str("=\"");
        }
        out.push_str(&escape_attr(&d.uri));
        out.push('"');
    }
    for a in attributes {
        out.push(' ');
        out.push_str(&a.name().as_markup());
        out.push_str("=\"");
        out.push_str(&escape_attr(a.value()));
        out.push('"');
    }
}

/// Writes `<!--text-->` (the body is emitted verbatim, as [`Writer`] does).
pub fn write_comment_markup(out: &mut String, text: &str) {
    out.push_str("<!--");
    out.push_str(text);
    out.push_str("-->");
}

/// Writes `<?target data?>` (the space is omitted when `data` is empty, as
/// [`Writer`] does).
pub fn write_pi_markup(out: &mut String, target: &str, data: &str) {
    out.push_str("<?");
    out.push_str(target);
    if !data.is_empty() {
        out.push(' ');
        out.push_str(data);
    }
    out.push_str("?>");
}

/// Options controlling serialization.
///
/// # Examples
///
/// ```
/// use navsep_xml::{Document, WriteOptions};
///
/// let doc = Document::parse("<a><b>hi</b></a>")?;
/// let compact = doc.to_xml(&WriteOptions::default().declaration(false));
/// assert_eq!(compact, "<a><b>hi</b></a>");
/// # Ok::<(), navsep_xml::ParseXmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOptions {
    declaration: bool,
    indent: Option<usize>,
}

impl Default for WriteOptions {
    /// XML declaration on, no indentation (canonical-ish compact output).
    fn default() -> Self {
        WriteOptions {
            declaration: true,
            indent: None,
        }
    }
}

impl WriteOptions {
    /// Compact output with a declaration (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Human-readable output: declaration + 2-space indentation.
    pub fn pretty() -> Self {
        WriteOptions {
            declaration: true,
            indent: Some(2),
        }
    }

    /// Whether to emit `<?xml version="1.0" encoding="UTF-8"?>`.
    pub fn declaration(mut self, yes: bool) -> Self {
        self.declaration = yes;
        self
    }

    /// Indent nested elements by `width` spaces; `None` means compact.
    pub fn indent(mut self, width: Option<usize>) -> Self {
        self.indent = width;
        self
    }
}

/// Serializer for [`Document`]s; usually invoked via [`Document::to_xml`].
#[derive(Debug)]
pub struct Writer<'o> {
    options: &'o WriteOptions,
    out: String,
}

impl<'o> Writer<'o> {
    /// Creates a writer with the given options.
    pub fn new(options: &'o WriteOptions) -> Self {
        Writer {
            options,
            out: String::new(),
        }
    }

    /// Serializes the whole document.
    pub fn write_document(mut self, doc: &Document) -> String {
        if self.options.declaration {
            self.out.push_str(XML_DECLARATION);
            if self.options.indent.is_some() {
                self.out.push('\n');
            }
        }
        let top: Vec<NodeId> = doc.children(doc.document_node()).to_vec();
        for (i, id) in top.iter().enumerate() {
            if i > 0 && self.options.indent.is_some() {
                self.out.push('\n');
            }
            self.write_node(doc, *id, 0);
        }
        if self.options.indent.is_some() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        self.out
    }

    /// Serializes the subtree rooted at `id` (no declaration).
    pub fn write_fragment(mut self, doc: &Document, id: NodeId) -> String {
        self.write_node(doc, id, 0);
        self.out
    }

    fn push_indent(&mut self, depth: usize) {
        if let Some(width) = self.options.indent {
            for _ in 0..depth * width {
                self.out.push(' ');
            }
        }
    }

    fn write_node(&mut self, doc: &Document, id: NodeId, depth: usize) {
        match doc.kind(id) {
            NodeKind::Document => {
                for &c in doc.children(id) {
                    self.write_node(doc, c, depth);
                }
            }
            NodeKind::Element {
                name,
                attributes,
                namespace_decls,
            } => {
                self.push_indent(depth);
                write_start_tag_open(&mut self.out, name, namespace_decls, attributes);
                let children = doc.children(id);
                if children.is_empty() {
                    self.out.push_str("/>");
                    if self.options.indent.is_some() {
                        self.out.push('\n');
                    }
                    return;
                }
                self.out.push('>');
                // Mixed content (any text child) is written inline so text is
                // not perturbed by indentation.
                let mixed = children.iter().any(|&c| doc.is_text(c));
                if self.options.indent.is_some() && !mixed {
                    self.out.push('\n');
                }
                for &c in children {
                    if mixed {
                        self.write_inline(doc, c);
                    } else {
                        self.write_node(doc, c, depth + 1);
                    }
                }
                if self.options.indent.is_some() && !mixed {
                    self.push_indent(depth);
                }
                self.out.push_str("</");
                self.out.push_str(&name.as_markup());
                self.out.push('>');
                if self.options.indent.is_some() {
                    self.out.push('\n');
                }
            }
            NodeKind::Text(t) => {
                self.push_indent(depth);
                self.out.push_str(&escape_text(t));
                if self.options.indent.is_some() {
                    self.out.push('\n');
                }
            }
            NodeKind::Comment(c) => {
                self.push_indent(depth);
                write_comment_markup(&mut self.out, c);
                if self.options.indent.is_some() {
                    self.out.push('\n');
                }
            }
            NodeKind::ProcessingInstruction { target, data } => {
                self.push_indent(depth);
                write_pi_markup(&mut self.out, target, data);
                if self.options.indent.is_some() {
                    self.out.push('\n');
                }
            }
        }
    }

    /// Writes a node without any indentation/newlines (inside mixed content).
    fn write_inline(&mut self, doc: &Document, id: NodeId) {
        let saved = self.options;
        let compact = WriteOptions {
            declaration: false,
            indent: None,
        };
        let mut w = Writer {
            options: &compact,
            out: std::mem::take(&mut self.out),
        };
        w.write_node(doc, id, 0);
        self.out = w.out;
        self.options = saved;
    }
}

/// Serializes the subtree rooted at `id` compactly, without a declaration.
pub fn fragment_to_string(doc: &Document, id: NodeId) -> String {
    let opts = WriteOptions::default().declaration(false);
    Writer::new(&opts).write_fragment(doc, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    #[test]
    fn compact_round_trip() {
        let src = "<a k=\"v\"><b>text</b><c/></a>";
        let doc = Document::parse(src).unwrap();
        let out = doc.to_xml(&WriteOptions::default().declaration(false));
        assert_eq!(out, src);
    }

    #[test]
    fn escapes_on_output() {
        let mut doc = Document::new();
        let root = doc.create_element(doc.document_node(), "a");
        doc.set_attribute(root, "k", "a<b\"c");
        doc.create_text(root, "x & y < z");
        let out = doc.to_xml(&WriteOptions::default().declaration(false));
        assert_eq!(out, "<a k=\"a&lt;b&quot;c\">x &amp; y &lt; z</a>");
    }

    #[test]
    fn pretty_indents_element_content() {
        let doc = Document::parse("<a><b><c/></b></a>").unwrap();
        let out = doc.to_pretty_xml();
        let expected =
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a>\n  <b>\n    <c/>\n  </b>\n</a>\n";
        assert_eq!(out, expected);
    }

    #[test]
    fn pretty_keeps_mixed_content_inline() {
        let doc = Document::parse("<p>one <em>two</em> three</p>").unwrap();
        let out = doc.to_pretty_xml();
        assert!(out.contains("<p>one <em>two</em> three</p>"));
    }

    #[test]
    fn namespace_declarations_serialized() {
        let src = "<r xmlns=\"urn:d\" xmlns:x=\"urn:x\"><x:a/></r>";
        let doc = Document::parse(src).unwrap();
        let out = doc.to_xml(&WriteOptions::default().declaration(false));
        assert_eq!(out, src);
    }

    #[test]
    fn fragment_serialization() {
        let doc = Document::parse("<a><b id=\"x\">t</b></a>").unwrap();
        let b = doc.element_by_id("x").unwrap();
        assert_eq!(fragment_to_string(&doc, b), "<b id=\"x\">t</b>");
    }

    #[test]
    fn pi_and_comment_round_trip() {
        let src = "<a><!--c--><?t d?></a>";
        let doc = Document::parse(src).unwrap();
        let out = doc.to_xml(&WriteOptions::default().declaration(false));
        assert_eq!(out, src);
    }
}
