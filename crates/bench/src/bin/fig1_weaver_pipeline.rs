//! Figure 1 regenerator: the AOP mechanism — separately-specified concerns
//! plus a relationship description, composed by a weaver into one program.
//!
//! The paper's Figure 1 is generic (any concerns); this demo weaves *three*
//! independent aspects into one page to show the mechanism itself, before
//! `navsep-core` specializes it to navigation.

use navsep_aspect::{AdvicePosition, Aspect, Pointcut, Weaver};
use navsep_bench::banner;
use navsep_xml::{Document, ElementBuilder};

fn main() {
    banner("Figure 1 — aspect-oriented programming mechanisms");
    println!(
        r#"
   concern A      concern B      concern C        relationships
  (base page)   (navigation)     (audit)       (pointcuts+precedence)
       \              |              |               /
        +----------- WEAVER (navsep-aspect) --------+
                          |
                       program
"#
    );

    let base = Document::parse(
        "<html><head><title>Guitar</title></head>\
         <body><h1>Guitar</h1><p>Pablo Picasso, 1913</p></body></html>",
    )
    .expect("base page");

    let navigation = Aspect::new("navigation").with_precedence(10).rule(
        Pointcut::parse(r#"element("body")"#).expect("pointcut"),
        AdvicePosition::Append,
        vec![ElementBuilder::new("div")
            .attr("class", "navigation")
            .child(
                ElementBuilder::new("a")
                    .attr("href", "guernica.html")
                    .text("Next"),
            )],
    );
    let audit = Aspect::new("audit").with_precedence(20).rule(
        Pointcut::parse(r#"element("body")"#).expect("pointcut"),
        AdvicePosition::Append,
        vec![ElementBuilder::new("small").text("served by navsep")],
    );
    let banner_aspect = Aspect::new("banner").with_precedence(0).rule(
        Pointcut::parse(r#"element("body")"#).expect("pointcut"),
        AdvicePosition::Prepend,
        vec![ElementBuilder::new("div")
            .attr("class", "banner")
            .text("MUSEUM")],
    );

    let weaver = Weaver::new()
        .aspect(navigation)
        .aspect(audit)
        .aspect(banner_aspect);
    let (woven, report) = weaver.weave_page("guitar.html", &base).expect("weave");

    banner("Weave report");
    print!("{report}");

    banner("Woven program");
    println!("{}", woven.to_pretty_xml());
}
