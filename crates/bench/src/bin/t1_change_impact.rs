//! Table T1 regenerator: the change-impact of the paper's requirement change
//! (Index → Indexed Guided Tour) under tangled vs separated authoring, as a
//! function of context size.
//!
//! This quantifies the paper's central claim: tangled authoring must touch
//! **every node page of the context** (files touched grows linearly), while
//! the separated authoring localizes the change to `links.xml`.

use navsep_bench::{banner, print_table, Setup};
use navsep_core::ImpactReport;
use navsep_hypermodel::AccessStructureKind;

fn main() {
    banner("T1 — cost of switching Index → Indexed Guided Tour");
    let mut rows = Vec::new();
    for n in [3usize, 10, 30, 100, 300, 1000] {
        let before = Setup::scaled(n, AccessStructureKind::Index);
        let after = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour);

        let tangled = ImpactReport::between(
            &before.tangled().to_file_map(),
            &after.tangled().to_file_map(),
        );
        let separated = ImpactReport::between(
            &before.separated().to_file_map(),
            &after.separated().to_file_map(),
        );
        rows.push(vec![
            n.to_string(),
            format!("{}", tangled.files_touched),
            format!("{}", tangled.lines_touched()),
            format!("{}", separated.files_touched),
            format!("{}", separated.lines_touched()),
        ]);
    }
    print_table(
        &[
            "context size N",
            "tangled files",
            "tangled lines",
            "separated files",
            "separated lines",
        ],
        &rows,
    );
    println!(
        "\nShape check (paper, qualitative): tangled touches every context page\n\
         (files ≈ N+1), separated touches exactly one file — links.xml — for\n\
         any N. Line counts grow linearly in both, but in the separated case\n\
         they are confined to the navigation artifact."
    );

    banner("Per-file detail for N = 3 (the paper's own context)");
    let before = Setup::scaled(3, AccessStructureKind::Index);
    let after = Setup::scaled(3, AccessStructureKind::IndexedGuidedTour);
    println!("tangled:");
    print!(
        "{}",
        ImpactReport::between(
            &before.tangled().to_file_map(),
            &after.tangled().to_file_map()
        )
    );
    println!("\nseparated:");
    print!(
        "{}",
        ImpactReport::between(
            &before.separated().to_file_map(),
            &after.separated().to_file_map()
        )
    );
}
