//! Figures 7–9 regenerator: the separated authoring files — `picasso.xml`
//! (Fig. 7), `avignon.xml` (Fig. 8), and the XLink linkbase `links.xml`
//! (Fig. 9) — generated, printed, and parsed back.

use navsep_bench::{banner, Setup};
use navsep_hypermodel::AccessStructureKind;
use navsep_xlink::Linkbase;

fn main() {
    let sources = Setup::paper(AccessStructureKind::IndexedGuidedTour).separated();

    banner("Figure 7 — picasso.xml (data only, no links)");
    println!(
        "{}",
        sources
            .get("picasso.xml")
            .unwrap()
            .document()
            .unwrap()
            .to_pretty_xml()
    );

    banner("Figure 8 — avignon.xml");
    println!(
        "{}",
        sources
            .get("avignon.xml")
            .unwrap()
            .document()
            .unwrap()
            .to_pretty_xml()
    );

    banner("Figure 9 — links.xml (ALL links, separated, as XLink)");
    let links_doc = sources.get("links.xml").unwrap().document().unwrap();
    println!("{}", links_doc.to_pretty_xml());

    banner("Round trip: parse links.xml back and expand its arcs");
    let lb = Linkbase::from_document(links_doc, "links.xml").expect("own output parses");
    for link in lb.extended_links() {
        println!(
            "context {:?} ({:?}): {} locators, {} arcs → {} traversals",
            link.role.as_deref().unwrap_or("-"),
            link.title.as_deref().unwrap_or("-"),
            link.locators.len(),
            link.arcs.len(),
            link.traversals().expect("valid arcs").len(),
        );
    }
    println!(
        "\ndocuments referenced by the linkbase: {:?}",
        lb.referenced_documents().expect("valid linkbase")
    );
}
