//! Figure 2 regenerator: the Index (2a) and Indexed Guided Tour (2b) access
//! structures for the paper's Picasso context, printed as link tables.

use navsep_bench::{banner, print_table};
use navsep_hypermodel::{AccessGraph, AccessStructureKind, Member};

fn graph_rows(graph: &AccessGraph) -> Vec<Vec<String>> {
    graph
        .links()
        .iter()
        .map(|l| {
            vec![
                l.kind.to_string(),
                l.from.to_string(),
                l.to.to_string(),
                l.label.clone(),
            ]
        })
        .collect()
}

fn main() {
    let members = [
        Member::new("guitar", "Guitar"),
        Member::new("guernica", "Guernica"),
        Member::new("avignon", "Les Demoiselles d'Avignon"),
    ];

    banner("Figure 2(a) — Index access structure (paper requirement v1)");
    let index = AccessGraph::build(AccessStructureKind::Index, &members);
    print_table(&["kind", "from", "to", "label"], &graph_rows(&index));
    println!("\n{} links total", index.len());

    banner("Figure 2(b) — Indexed Guided Tour (after the customer's change)");
    let igt = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &members);
    print_table(&["kind", "from", "to", "label"], &graph_rows(&igt));
    println!("\n{} links total", igt.len());

    banner("Delta 2(a) → 2(b)");
    let added: Vec<Vec<String>> = igt
        .links()
        .iter()
        .filter(|l| !index.links().contains(l))
        .map(|l| vec![l.kind.to_string(), l.from.to_string(), l.to.to_string()])
        .collect();
    print_table(&["added kind", "from", "to"], &added);
    println!(
        "\nThe change adds {} links: the next/previous chain plus the tour entry.",
        added.len()
    );
}
