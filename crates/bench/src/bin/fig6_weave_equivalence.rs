//! Figure 6 regenerator: the separation of the navigational aspect — data,
//! presentation and navigation woven into the final application — verified
//! equivalent to the tangled baseline.

use navsep_bench::{banner, print_table, Setup};
use navsep_core::{assert_site_equivalent, weave_separated_cached, WeaveCache};
use navsep_hypermodel::AccessStructureKind;

fn main() {
    banner("Figure 6 — separation of the navigational aspect");
    println!(
        r#"
     data (*.xml)          presentation (transform.xml + museum.css)
          \                        /
           base pages (XSLT-lite transform)      navigation (links.xml, XLink)
                     \                                /
                      +------ ASPECT WEAVER ---------+
                                    |
                              web application
"#
    );

    // One cache across all three weaves: the transform compiles once and is
    // reused (steady state); only each access structure's linkbase is new.
    let cache = WeaveCache::new();
    for access in [
        AccessStructureKind::Index,
        AccessStructureKind::GuidedTour,
        AccessStructureKind::IndexedGuidedTour,
    ] {
        banner(&format!("Weave with access structure: {access}"));
        let setup = Setup::paper(access);
        let tangled = setup.tangled();
        let sources = setup.separated();
        let woven = weave_separated_cached(&sources, &cache).expect("pipeline");

        let rows: Vec<Vec<String>> = woven
            .reports
            .iter()
            .map(|r| {
                vec![
                    r.page.clone(),
                    r.join_points.to_string(),
                    r.applications().to_string(),
                ]
            })
            .collect();
        print_table(&["page", "join points", "advice applied"], &rows);

        match assert_site_equivalent(&tangled, &woven.site) {
            Ok(()) => println!("\n✔ woven site is DOM-equivalent to the tangled baseline"),
            Err(diff) => println!("\n✘ MISMATCH: {diff}"),
        }
    }
    println!(
        "\nspec cache: {} compilations, {} reuses (transform compiled once \
         across all three access structures)",
        cache.misses(),
        cache.hits()
    );
}
