//! History workload: N concurrent sessions random-walk the woven museum
//! while a live [`SitePublisher`] reweaves it, measuring traversal
//! throughput and how many history entries the reweaves left stale.
//!
//! This is the scenario the ROADMAP's navigation-history item asks for:
//! the serving side stamps every response with its generation, each
//! session's history records the generation per entry (Brewster–Jeffrey
//! model, `navsep_web::history`), and a commit landing mid-walk makes the
//! already-recorded entries classify stale — observable both offline
//! (`stale_entries`) and via the conditional-navigation HTTP check
//! (`revalidate`).
//!
//! Phases alternate deterministically: every session walks a chunk of
//! steps, all meet at a barrier, the publisher commits one reweave, and
//! the next chunk begins. With P publishes the final generation is P+1,
//! so every entry recorded before the last commit is stale by the end.
//!
//! Usage: `cargo run --release --bin history_workload [-- --smoke]
//! [-- --time-travel]`
//! (`--smoke`, or `HISTORY_WORKLOAD_SMOKE=1`, shrinks the step count for
//! CI; sessions and publishes stay at full scale so the acceptance
//! invariants hold in both modes).
//!
//! `--time-travel` runs the **snapshot-stability** workload instead:
//! sessions traverse back/forward while the publisher churns data edits
//! through the store's bounded retention ring, a checker replays a pinned
//! generation over HTTP on every round asserting its body stays
//! byte-identical, and every non-degraded `back()` must land on exactly
//! the generation the history entry recorded. Degradations past the
//! retention horizon are counted and must carry the explicit header — the
//! protocol forbids silent substitution.

use navsep_bench::{banner, print_table};
use navsep_core::museum::{museum_navigation, paper_museum};
use navsep_core::publish::{SitePublisher, SourceEdit};
use navsep_core::separated_sources;
use navsep_core::spec::paper_spec;
use navsep_hypermodel::AccessStructureKind;
use navsep_web::{
    Freshness, Handler, HistoryClock, JointHistory, NavigationSession, Request, SessionHistory,
    ShardedSiteHandler, ShardedSiteStore, AT_GENERATION_HEADER, DEGRADED_HEADER,
};
use navsep_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const SESSIONS: usize = 8;
const PUBLISHES: usize = 4;
const ENTRY_PAGE: &str = "picasso.html";

/// What one session hands back after the walk.
struct SessionReport {
    traversals: u64,
    revalidations_stale: u64,
    history: SessionHistory,
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("HISTORY_WORKLOAD_SMOKE").is_ok_and(|v| v == "1")
}

/// One random navigation action; returns `true` when a page was loaded.
fn act<H: navsep_web::Handler>(session: &mut NavigationSession<H>, rng: &mut StdRng) -> bool {
    match rng.gen_range(0u32..100) {
        // Mostly: follow a random link off the current page. Clone only
        // the chosen link — this loop is the measured hot path.
        0..=54 => {
            let link = match session.current_page() {
                Some(page) if !page.links.is_empty() => {
                    page.links[rng.gen_range(0usize..page.links.len())].clone()
                }
                _ => return session.visit(ENTRY_PAGE).is_ok(),
            };
            match session.follow_link(&link) {
                Ok(_) => true,
                // Dead ends (fragment self-links etc.) restart the tour.
                Err(_) => session.visit(ENTRY_PAGE).is_ok(),
            }
        }
        55..=69 => session.back().is_ok(),
        70..=79 => session.forward().is_ok(),
        // The model's traverse(δ), clamped at the bounds.
        80..=89 => {
            let delta = rng.gen_range(0i64..7) as isize - 3;
            matches!(session.traverse(delta), Ok(moved) if moved != 0)
        }
        // Occasionally run the conditional-navigation check.
        _ => {
            matches!(session.revalidate(), Ok(Freshness::Stale { .. }))
                && session.current_page().is_some()
        }
    }
}

/// A data-document edit that retitles Guernica — content that flows into
/// `guernica.html`, so the commit really changes a page (an incremental
/// publisher leaves untouched pages' generation stamps alone, and a
/// css-only reweave would leave every conditional check fresh).
fn guernica_edit(round: usize) -> SourceEdit {
    SourceEdit::put_document(
        "guernica.xml",
        Document::parse(&format!(
            r#"<painting id="guernica"><title>Guernica (rev {round})</title><year>1937</year></painting>"#
        ))
        .expect("edit is well-formed"),
    )
}

fn main() {
    let smoke = smoke_mode();
    if std::env::args().any(|a| a == "--time-travel") {
        time_travel(smoke);
        return;
    }
    let steps_per_phase: usize = if smoke { 40 } else { 300 };

    let sources = separated_sources(
        &paper_museum(),
        &museum_navigation(),
        &paper_spec(AccessStructureKind::IndexedGuidedTour),
    )
    .expect("museum authoring is valid");
    let store = Arc::new(ShardedSiteStore::new(16));
    let mut publisher = SitePublisher::new(sources, Arc::clone(&store));
    publisher.commit().expect("initial weave");

    banner(&format!(
        "history_workload — {SESSIONS} sessions × {} phases × {steps_per_phase} steps, \
         {PUBLISHES} interleaved publishes{}",
        PUBLISHES + 1,
        if smoke { " (smoke)" } else { "" }
    ));

    let clock = HistoryClock::new();
    // Every session plus the publisher meet between chunk and commit.
    let chunk_done = Arc::new(Barrier::new(SESSIONS + 1));
    let commit_done = Arc::new(Barrier::new(SESSIONS + 1));
    let started = Instant::now();

    let reports: Vec<SessionReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let store = Arc::clone(&store);
                let clock = clock.clone();
                let chunk_done = Arc::clone(&chunk_done);
                let commit_done = Arc::clone(&commit_done);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ i as u64);
                    let mut session = NavigationSession::with_clock(
                        ShardedSiteHandler::new(Arc::clone(&store)),
                        clock,
                    );
                    session.visit(ENTRY_PAGE).expect("entry page exists");
                    let mut traversals = 1u64;
                    let mut revalidations_stale = 0u64;
                    for phase in 0..=PUBLISHES {
                        if phase > 0 {
                            // A reweave just landed: the conditional check
                            // on the pre-commit entry must catch it.
                            if let Ok(Freshness::Stale { .. }) = session.revalidate() {
                                revalidations_stale += 1;
                            }
                        }
                        for _ in 0..steps_per_phase {
                            if act(&mut session, &mut rng) {
                                traversals += 1;
                            }
                        }
                        chunk_done.wait();
                        commit_done.wait();
                    }
                    SessionReport {
                        traversals,
                        revalidations_stale,
                        history: session.history().clone(),
                    }
                })
            })
            .collect();

        // Publisher: one reweave between chunks (none after the last).
        // Each batch restyles the CSS *and* retitles one painting, so the
        // reweave genuinely changes a page (see `guernica_edit`).
        for publish in 0..=PUBLISHES {
            chunk_done.wait();
            if publish < PUBLISHES {
                publisher.stage(SourceEdit::put_raw(
                    "museum.css",
                    format!("/* reweave {publish} */"),
                ));
                publisher.stage(guernica_edit(publish));
                publisher.commit().expect("reweave cannot fail");
            }
            commit_done.wait();
        }

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = started.elapsed();
    let final_generation = store.generation();
    assert_eq!(final_generation, PUBLISHES as u64 + 1);

    let mut rows = Vec::new();
    let mut total_traversals = 0u64;
    let mut total_stale = 0usize;
    let mut total_stale_revalidations = 0u64;
    for (i, report) in reports.iter().enumerate() {
        let stale = report.history.stale_entries(final_generation);
        total_traversals += report.traversals;
        total_stale += stale;
        total_stale_revalidations += report.revalidations_stale;
        rows.push(vec![
            format!("session {i}"),
            report.traversals.to_string(),
            report.history.len().to_string(),
            stale.to_string(),
            report.revalidations_stale.to_string(),
        ]);
    }
    print_table(
        &[
            "session",
            "traversals",
            "history entries",
            "stale entries",
            "stale revalidations",
        ],
        &rows,
    );

    let histories: Vec<&SessionHistory> = reports.iter().map(|r| &r.history).collect();
    let joint = JointHistory::of(&histories);
    let throughput = total_traversals as f64 / elapsed.as_secs_f64();
    println!();
    println!(
        "final generation    : {final_generation} ({PUBLISHES} publishes interleaved with walks)"
    );
    println!(
        "traversal throughput: {throughput:.0} traversals/s \
         ({total_traversals} traversals in {:.2?}, {SESSIONS} sessions)",
        elapsed
    );
    println!(
        "joint history       : {} entries across all sessions",
        joint.len()
    );
    println!(
        "stale detections    : {total_stale} stale history entries; \
         {total_stale_revalidations} caught live by conditional revalidation"
    );

    // The acceptance invariants this bin exists to demonstrate.
    assert!(SESSIONS >= 8, "must drive at least 8 concurrent sessions");
    assert!(PUBLISHES >= 3, "must interleave at least 3 publishes");
    assert!(
        total_stale >= 1,
        "a reweave mid-walk must leave at least one stale history entry"
    );
    let mut last_seq = 0;
    for entry in joint.entries() {
        assert!(entry.entry.seq >= last_seq, "joint order sorted");
        last_seq = entry.entry.seq;
        let generation = entry.entry.generation.expect("sharded store stamps all");
        assert!(
            (1..=final_generation).contains(&generation),
            "entry names unpublished generation {generation}"
        );
    }
    println!("\nOK — history model, staleness policy, and joint ordering all held under load.");
}

/// The time-travel workload: sessions traverse while publishes churn the
/// retention ring, asserting snapshot stability end to end.
fn time_travel(smoke: bool) {
    const TT_SESSIONS: usize = 6;
    const RETENTION: usize = 6;
    let publishes: usize = if smoke { 10 } else { 24 };
    let steps: usize = if smoke { 120 } else { 600 };

    let sources = separated_sources(
        &paper_museum(),
        &museum_navigation(),
        &paper_spec(AccessStructureKind::IndexedGuidedTour),
    )
    .expect("museum authoring is valid");
    // Retention smaller than the churn, so eviction and explicit
    // degradation really happen.
    let store = Arc::new(ShardedSiteStore::with_retention(16, RETENTION));
    let mut publisher = SitePublisher::new(sources, Arc::clone(&store));
    publisher.commit().expect("initial weave");
    assert!(publishes > RETENTION, "churn must outrun the ring");

    banner(&format!(
        "history_workload --time-travel — {TT_SESSIONS} sessions × {steps} steps, \
         {publishes} publishes through a {RETENTION}-epoch ring{}",
        if smoke { " (smoke)" } else { "" }
    ));

    // The body generation 1 served for the page the churn keeps editing,
    // pinned so eviction routes around it.
    let baseline = store.get("guernica.html").expect("woven page").body();
    let _pin = store.pin(1);

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let (snapshot_checks, session_rows) = std::thread::scope(|scope| {
        // Publisher: churn data edits as fast as the weaver allows.
        {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for round in 0..publishes {
                    publisher.stage(guernica_edit(round));
                    publisher.commit().expect("data reweave cannot fail");
                }
                stop.store(true, Ordering::Release);
            });
        }
        // Checker: replay the pinned generation over HTTP on every round;
        // the body must never drift while the publisher churns.
        let checker = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let baseline = baseline.clone();
            scope.spawn(move || {
                let handler = ShardedSiteHandler::new(Arc::clone(&store));
                let mut checks = 0u64;
                // Check-then-test-stop (not the reverse): the publisher can
                // finish its whole churn before this thread is scheduled, and
                // the replay invariant must still be observed at least once
                // against the fully churned store.
                loop {
                    let response = handler
                        .handle(&Request::get("guernica.html").header(AT_GENERATION_HEADER, "1"));
                    assert!(response.status().is_success());
                    assert_eq!(
                        response.header_value(DEGRADED_HEADER),
                        None,
                        "the pinned generation must never degrade"
                    );
                    assert_eq!(
                        response.body(),
                        &baseline,
                        "generation 1's body drifted under churn"
                    );
                    checks += 1;
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                checks
            })
        };
        // Sessions: walk the site, then exercise back()/forward() hard.
        // Every non-degraded traversal must land on exactly the
        // generation its history entry recorded; every degradation must
        // be flagged.
        let sessions: Vec<_> = (0..TT_SESSIONS)
            .map(|i| {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xDECADE ^ i as u64);
                    let mut session =
                        NavigationSession::new(ShardedSiteHandler::new(Arc::clone(&store)));
                    session.visit(ENTRY_PAGE).expect("entry page exists");
                    let mut snapshot_backs = 0u64;
                    let mut degraded_backs = 0u64;
                    for _ in 0..steps {
                        if rng.gen_range(0u32..100) < 55 {
                            // Wander: follow a random link (restart on dead
                            // ends) to grow history across generations.
                            let link = match session.current_page() {
                                Some(page) if !page.links.is_empty() => {
                                    page.links[rng.gen_range(0usize..page.links.len())].clone()
                                }
                                _ => {
                                    session.visit(ENTRY_PAGE).ok();
                                    continue;
                                }
                            };
                            if session.follow_link(&link).is_err() {
                                session.visit(ENTRY_PAGE).ok();
                            }
                            continue;
                        }
                        // Traverse: the snapshot assertion proper.
                        let backwards = rng.gen_range(0u32..10) < 6;
                        let history = session.history();
                        let position = history.position().unwrap_or(0);
                        let entries = history.entries();
                        let target = if backwards {
                            position.checked_sub(1).and_then(|p| entries.get(p))
                        } else {
                            entries.get(position + 1)
                        };
                        let Some(recorded) = target.and_then(|e| e.generation) else {
                            continue;
                        };
                        let step = if backwards {
                            session.back()
                        } else {
                            session.forward()
                        };
                        match step {
                            Ok(page) if page.degraded => {
                                degraded_backs += 1;
                                // Degradation is explicit and the entry is
                                // refreshed to what was really served.
                                assert_eq!(
                                    session.current_entry().and_then(|e| e.generation),
                                    session.current_generation(),
                                );
                            }
                            Ok(_) => {
                                snapshot_backs += 1;
                                assert_eq!(
                                    session.current_generation(),
                                    Some(recorded),
                                    "a non-degraded traversal must serve the recorded generation"
                                );
                            }
                            Err(_) => {}
                        }
                    }
                    (session.history().len(), snapshot_backs, degraded_backs)
                })
            })
            .collect();
        (
            checker.join().expect("checker thread"),
            sessions
                .into_iter()
                .map(|h| h.join().expect("session thread"))
                .collect::<Vec<_>>(),
        )
    });

    let elapsed = started.elapsed();
    let mut rows = Vec::new();
    let mut total_snapshot = 0u64;
    let mut total_degraded = 0u64;
    for (i, (entries, snapshot_backs, degraded_backs)) in session_rows.iter().enumerate() {
        total_snapshot += snapshot_backs;
        total_degraded += degraded_backs;
        rows.push(vec![
            format!("session {i}"),
            entries.to_string(),
            snapshot_backs.to_string(),
            degraded_backs.to_string(),
        ]);
    }
    print_table(
        &[
            "session",
            "history entries",
            "snapshot traversals",
            "degraded traversals",
        ],
        &rows,
    );
    println!();
    println!(
        "final generation    : {} ({publishes} publishes, ring of {RETENTION})",
        store.generation()
    );
    println!("retained            : {:?}", store.retained_generations());
    println!(
        "snapshot checks     : {snapshot_checks} byte-identical replays of pinned generation 1 \
         in {elapsed:.2?}"
    );
    println!(
        "traversals          : {total_snapshot} snapshot-backed, {total_degraded} degraded \
         (explicitly flagged)"
    );

    // The acceptance invariants of time-travel mode.
    assert_eq!(store.generation(), publishes as u64 + 1);
    assert!(snapshot_checks > 0, "the checker must observe the churn");
    assert!(
        total_snapshot > 0,
        "sessions must complete snapshot-backed traversals"
    );
    assert!(
        store.retained_generations().contains(&1),
        "the pinned epoch must survive {publishes} publishes through a {RETENTION}-ring"
    );
    assert_eq!(
        store.get_at("guernica.html", 1).expect("pinned").body(),
        baseline,
        "generation 1 still serves its original bytes after the churn"
    );
    println!("\nOK — snapshots stayed byte-stable under churn; degradations were explicit.");
}
