//! History workload: N concurrent sessions random-walk the woven museum
//! while a live [`SitePublisher`] reweaves it, measuring traversal
//! throughput and how many history entries the reweaves left stale.
//!
//! This is the scenario the ROADMAP's navigation-history item asks for:
//! the serving side stamps every response with its generation, each
//! session's history records the generation per entry (Brewster–Jeffrey
//! model, `navsep_web::history`), and a commit landing mid-walk makes the
//! already-recorded entries classify stale — observable both offline
//! (`stale_entries`) and via the conditional-navigation HTTP check
//! (`revalidate`).
//!
//! Phases alternate deterministically: every session walks a chunk of
//! steps, all meet at a barrier, the publisher commits one reweave, and
//! the next chunk begins. With P publishes the final generation is P+1,
//! so every entry recorded before the last commit is stale by the end.
//!
//! Usage: `cargo run --release --bin history_workload [-- --smoke]`
//! (`--smoke`, or `HISTORY_WORKLOAD_SMOKE=1`, shrinks the step count for
//! CI; sessions and publishes stay at full scale so the acceptance
//! invariants hold in both modes).

use navsep_bench::{banner, print_table};
use navsep_core::museum::{museum_navigation, paper_museum};
use navsep_core::publish::{SitePublisher, SourceEdit};
use navsep_core::separated_sources;
use navsep_core::spec::paper_spec;
use navsep_hypermodel::AccessStructureKind;
use navsep_web::{
    Freshness, HistoryClock, JointHistory, NavigationSession, SessionHistory, ShardedSiteHandler,
    ShardedSiteStore,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const SESSIONS: usize = 8;
const PUBLISHES: usize = 4;
const ENTRY_PAGE: &str = "picasso.html";

/// What one session hands back after the walk.
struct SessionReport {
    traversals: u64,
    revalidations_stale: u64,
    history: SessionHistory,
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("HISTORY_WORKLOAD_SMOKE").is_ok_and(|v| v == "1")
}

/// One random navigation action; returns `true` when a page was loaded.
fn act<H: navsep_web::Handler>(session: &mut NavigationSession<H>, rng: &mut StdRng) -> bool {
    match rng.gen_range(0u32..100) {
        // Mostly: follow a random link off the current page. Clone only
        // the chosen link — this loop is the measured hot path.
        0..=54 => {
            let link = match session.current_page() {
                Some(page) if !page.links.is_empty() => {
                    page.links[rng.gen_range(0usize..page.links.len())].clone()
                }
                _ => return session.visit(ENTRY_PAGE).is_ok(),
            };
            match session.follow_link(&link) {
                Ok(_) => true,
                // Dead ends (fragment self-links etc.) restart the tour.
                Err(_) => session.visit(ENTRY_PAGE).is_ok(),
            }
        }
        55..=69 => session.back().is_ok(),
        70..=79 => session.forward().is_ok(),
        // The model's traverse(δ), clamped at the bounds.
        80..=89 => {
            let delta = rng.gen_range(0i64..7) as isize - 3;
            matches!(session.traverse(delta), Ok(moved) if moved != 0)
        }
        // Occasionally run the conditional-navigation check.
        _ => {
            matches!(session.revalidate(), Ok(Freshness::Stale { .. }))
                && session.current_page().is_some()
        }
    }
}

fn main() {
    let smoke = smoke_mode();
    let steps_per_phase: usize = if smoke { 40 } else { 300 };

    let sources = separated_sources(
        &paper_museum(),
        &museum_navigation(),
        &paper_spec(AccessStructureKind::IndexedGuidedTour),
    )
    .expect("museum authoring is valid");
    let store = Arc::new(ShardedSiteStore::new(16));
    let mut publisher = SitePublisher::new(sources, Arc::clone(&store));
    publisher.commit().expect("initial weave");

    banner(&format!(
        "history_workload — {SESSIONS} sessions × {} phases × {steps_per_phase} steps, \
         {PUBLISHES} interleaved publishes{}",
        PUBLISHES + 1,
        if smoke { " (smoke)" } else { "" }
    ));

    let clock = HistoryClock::new();
    // Every session plus the publisher meet between chunk and commit.
    let chunk_done = Arc::new(Barrier::new(SESSIONS + 1));
    let commit_done = Arc::new(Barrier::new(SESSIONS + 1));
    let started = Instant::now();

    let reports: Vec<SessionReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let store = Arc::clone(&store);
                let clock = clock.clone();
                let chunk_done = Arc::clone(&chunk_done);
                let commit_done = Arc::clone(&commit_done);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ i as u64);
                    let mut session = NavigationSession::with_clock(
                        ShardedSiteHandler::new(Arc::clone(&store)),
                        clock,
                    );
                    session.visit(ENTRY_PAGE).expect("entry page exists");
                    let mut traversals = 1u64;
                    let mut revalidations_stale = 0u64;
                    for phase in 0..=PUBLISHES {
                        if phase > 0 {
                            // A reweave just landed: the conditional check
                            // on the pre-commit entry must catch it.
                            if let Ok(Freshness::Stale { .. }) = session.revalidate() {
                                revalidations_stale += 1;
                            }
                        }
                        for _ in 0..steps_per_phase {
                            if act(&mut session, &mut rng) {
                                traversals += 1;
                            }
                        }
                        chunk_done.wait();
                        commit_done.wait();
                    }
                    SessionReport {
                        traversals,
                        revalidations_stale,
                        history: session.history().clone(),
                    }
                })
            })
            .collect();

        // Publisher: one reweave between chunks (none after the last).
        for publish in 0..=PUBLISHES {
            chunk_done.wait();
            if publish < PUBLISHES {
                publisher.stage(SourceEdit::put_raw(
                    "museum.css",
                    format!("/* reweave {publish} */"),
                ));
                publisher.commit().expect("css reweave cannot fail");
            }
            commit_done.wait();
        }

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = started.elapsed();
    let final_generation = store.generation();
    assert_eq!(final_generation, PUBLISHES as u64 + 1);

    let mut rows = Vec::new();
    let mut total_traversals = 0u64;
    let mut total_stale = 0usize;
    let mut total_stale_revalidations = 0u64;
    for (i, report) in reports.iter().enumerate() {
        let stale = report.history.stale_entries(final_generation);
        total_traversals += report.traversals;
        total_stale += stale;
        total_stale_revalidations += report.revalidations_stale;
        rows.push(vec![
            format!("session {i}"),
            report.traversals.to_string(),
            report.history.len().to_string(),
            stale.to_string(),
            report.revalidations_stale.to_string(),
        ]);
    }
    print_table(
        &[
            "session",
            "traversals",
            "history entries",
            "stale entries",
            "stale revalidations",
        ],
        &rows,
    );

    let histories: Vec<&SessionHistory> = reports.iter().map(|r| &r.history).collect();
    let joint = JointHistory::of(&histories);
    let throughput = total_traversals as f64 / elapsed.as_secs_f64();
    println!();
    println!(
        "final generation    : {final_generation} ({PUBLISHES} publishes interleaved with walks)"
    );
    println!(
        "traversal throughput: {throughput:.0} traversals/s \
         ({total_traversals} traversals in {:.2?}, {SESSIONS} sessions)",
        elapsed
    );
    println!(
        "joint history       : {} entries across all sessions",
        joint.len()
    );
    println!(
        "stale detections    : {total_stale} stale history entries; \
         {total_stale_revalidations} caught live by conditional revalidation"
    );

    // The acceptance invariants this bin exists to demonstrate.
    assert!(SESSIONS >= 8, "must drive at least 8 concurrent sessions");
    assert!(PUBLISHES >= 3, "must interleave at least 3 publishes");
    assert!(
        total_stale >= 1,
        "a reweave mid-walk must leave at least one stale history entry"
    );
    let mut last_seq = 0;
    for entry in joint.entries() {
        assert!(entry.entry.seq >= last_seq, "joint order sorted");
        last_seq = entry.entry.seq;
        let generation = entry.entry.generation.expect("sharded store stamps all");
        assert!(
            (1..=final_generation).contains(&generation),
            "entry names unpublished generation {generation}"
        );
    }
    println!("\nOK — history model, staleness policy, and joint ordering all held under load.");
}
