//! Figures 3 and 4 regenerator: the *Guitar* node page under the Index
//! access structure (Fig. 3) and under the Indexed Guided Tour (Fig. 4),
//! with the added lines marked — plus the paper's observation that every
//! node page of the context changes.

use navsep_bench::{banner, print_table, Setup};
use navsep_core::diff_lines;
use navsep_core::museum::PICASSO_CONTEXT;
use navsep_hypermodel::AccessStructureKind;

fn page_text(site: &navsep_web::Site, path: &str) -> String {
    site.get(path)
        .and_then(|r| r.document().map(|d| d.to_pretty_xml()))
        .unwrap_or_default()
}

fn main() {
    let index_site = Setup::paper(AccessStructureKind::Index).tangled();
    let igt_site = Setup::paper(AccessStructureKind::IndexedGuidedTour).tangled();

    banner("Figure 3 — guitar.html implemented with the Index access structure");
    let fig3 = page_text(&index_site, "guitar.html");
    println!("{fig3}");

    banner("Figure 4 — the same node with the Indexed Guided Tour");
    let fig4 = page_text(&igt_site, "guitar.html");
    // Mark the added lines the way the paper bolds them.
    let fig3_lines: Vec<&str> = fig3.lines().collect();
    for line in fig4.lines() {
        if fig3_lines.contains(&line) {
            println!("  {line}");
        } else {
            println!("+ {line}");
        }
    }

    banner("The paper's point: every node of the context changes");
    let mut rows = Vec::new();
    for slug in PICASSO_CONTEXT {
        let path = format!("{slug}.html");
        let stats = diff_lines(&page_text(&index_site, &path), &page_text(&igt_site, &path));
        rows.push(vec![
            path,
            format!("+{}", stats.added),
            format!("-{}", stats.removed),
        ]);
    }
    print_table(&["page", "lines added", "lines removed"], &rows);
    println!(
        "\n\"Although they seem only two lines of HTML code … this isn't the only\n\
         page we have to modify. We have to change all the nodes of the context.\""
    );
}
