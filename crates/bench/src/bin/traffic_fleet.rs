//! Traffic fleet: a million-request, ten-thousand-session scenario sweep
//! against the sharded serving stack, with one scenario driven over the
//! real TCP front end.
//!
//! Each scenario models a distinct traffic shape the ROADMAP's serving
//! item calls for:
//!
//! | scenario | shape |
//! |----------|-------|
//! | `zipf` | page popularity follows a zipf(1.1) law — a few hot pages, a long tail |
//! | `back_button` | readers replay history entries with `x-navsep-at-generation` (the retention ring) and revalidate with `x-navsep-if-generation` |
//! | `crawler` | full-site sweeps, every path in order, GET and HEAD |
//! | `flash_crowd` | thousands of sessions hammer one page (one shard) at once |
//! | `publish_storm` | publishes land mid-traffic; sessions observe generation churn |
//! | `wire` | the zipf mix over real TCP keep-alive connections through `HttpListener` |
//! | `c10k` | ≥10 000 concurrent sockets (mostly idle keep-alive, a zipf-hot active subset) against one event-loop listener, on a bounded thread count |
//!
//! The `c10k` scenario spreads its sockets across client **subprocesses**
//! (re-exec of this binary with `--c10k-client`) so each process stays
//! inside its own fd limit; the parent process is the server and asserts
//! the concurrent-socket floor and the OS-thread bound while the fleet is
//! connected. Linux-only (epoll + `/proc/self/status`); elsewhere it is
//! skipped with a note.
//!
//! Per-scenario requests, shed rate, and served p50/p99 land in
//! `BENCH_traffic.json` (merge-writer format, one section per scenario
//! plus a `fleet` section with totals and the honest core count).
//!
//! Usage: `cargo run --release -p navsep-bench --bin traffic_fleet [-- --smoke]`
//! (`--smoke`, or `TRAFFIC_FLEET_SMOKE=1`, is the CI-sized run — it still
//! completes ≥1M requests across ≥10k sessions; the full run quadruples
//! per-session request counts).

use navsep_bench::{banner, print_table, record_bench_section_in, traffic_json_path};
use navsep_web::wire::{read_response, serialize_request};
use navsep_web::{
    HttpListener, ListenerConfig, PoolConfig, Request, ServerPool, ShardedSiteHandler,
    ShardedSiteStore, Site, AT_GENERATION_HEADER, DEGRADED_HEADER, GENERATION_HEADER,
    IF_GENERATION_HEADER, STALE_HEADER,
};
use navsep_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pages in the served corpus (plus `index.html` and `style.css`).
const PAGES: usize = 400;
/// Generations published before traffic starts.
const WARM_GENERATIONS: u64 = 6;
/// Retained-epoch ring depth — smaller than the publish churn, so
/// back-button time travel really hits the horizon sometimes.
const RETENTION: usize = 4;
/// Client threads per scenario (logical sessions are multiplexed on top).
const CLIENT_THREADS: usize = 4;

/// c10k: client subprocesses (each holds its own fd budget).
const C10K_CLIENTS: usize = 2;
/// c10k: keep-alive sockets per client subprocess.
const C10K_SOCKETS_PER_CLIENT: usize = 5_100;
/// c10k: sockets per client that actively send traffic (the rest idle in
/// keep-alive, exercising the timer wheel and the fd ceiling).
const C10K_ACTIVE_PER_CLIENT: usize = 192;
/// c10k: pipelined requests per burst (== the listener's default
/// `max_pipeline`, so pause/resume backpressure is exercised too).
const C10K_BURST: usize = 32;
/// c10k: event loops and pool workers for the dedicated listener.
const C10K_LOOPS: usize = 2;
const C10K_WORKERS: usize = 4;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("TRAFFIC_FLEET_SMOKE").is_ok_and(|v| v == "1")
}

fn page_path(i: usize) -> String {
    format!("page-{i:03}.xml")
}

/// The corpus at a given content revision.
fn corpus(revision: u64) -> Site {
    let mut site = Site::new();
    for i in 0..PAGES {
        site.put_document(
            &page_path(i),
            Document::parse(&format!(
                "<exhibit id=\"e{i}\" rev=\"{revision}\"><title>Exhibit {i}</title>\
                 <body>wing {} case {}</body></exhibit>",
                i % 12,
                i % 37,
            ))
            .expect("corpus page is well-formed"),
        );
    }
    site.put_page(
        "index.html",
        Document::parse(&format!(
            "<html><body><h1>Museum rev {revision}</h1></body></html>"
        ))
        .expect("index is well-formed"),
    );
    site.put_css("style.css", "body { margin: 0 }");
    site
}

/// Cumulative zipf(1.1) weights over the page ranks, for integer sampling.
fn zipf_cdf() -> Vec<u64> {
    let mut cdf = Vec::with_capacity(PAGES);
    let mut total = 0u64;
    for rank in 0..PAGES {
        total += (1e9 / ((rank + 1) as f64).powf(1.1)) as u64;
        cdf.push(total);
    }
    cdf
}

fn sample_zipf(cdf: &[u64], rng: &mut StdRng) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let pick = rng.gen_range(0u64..total);
    cdf.partition_point(|&c| c <= pick)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// What one scenario hands back: counts plus the served-latency
/// distribution in microseconds.
struct ScenarioResult {
    name: &'static str,
    sessions: usize,
    requests: usize,
    shed: usize,
    /// Scenario-specific extras (degraded time travels, stale verdicts…).
    notes: Vec<(&'static str, u64)>,
    latencies_us: Vec<u64>,
}

impl ScenarioResult {
    fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    fn finish(mut self) -> Self {
        self.latencies_us.sort_unstable();
        self
    }

    fn p50(&self) -> u64 {
        percentile(&self.latencies_us, 50.0)
    }

    fn p99(&self) -> u64 {
        percentile(&self.latencies_us, 99.0)
    }

    fn json(&self) -> String {
        let notes = self
            .notes
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v}"))
            .collect::<String>();
        format!(
            "{{\"sessions\": {}, \"requests\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
             \"served_p50_us\": {}, \"served_p99_us\": {}{notes}}}",
            self.sessions,
            self.requests,
            self.shed,
            self.shed_rate(),
            self.p50(),
            self.p99(),
        )
    }
}

/// Drives `sessions` logical sessions, each issuing `per_session` requests
/// built by `make` (called with session id, step, rng), in pipelined
/// bursts of `burst` per client thread. Sessions are partitioned across
/// [`CLIENT_THREADS`] threads and interleaved round-robin, so every
/// session in a thread's slice is mid-stream concurrently for the whole
/// scenario.
fn drive<F>(
    name: &'static str,
    pool: &ServerPool,
    sessions: usize,
    per_session: usize,
    burst: usize,
    seed: u64,
    make: F,
) -> ScenarioResult
where
    F: Fn(usize, usize, &mut StdRng) -> Request + Sync,
{
    let make = &make;
    let outcomes: Vec<(bool, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64) << 32);
                    let slice: Vec<usize> =
                        (0..sessions).filter(|s| s % CLIENT_THREADS == t).collect();
                    let mut out = Vec::with_capacity(slice.len() * per_session);
                    // Round-robin across the slice: step 0 for every
                    // session, then step 1, … — all sessions stay live.
                    for step in 0..per_session {
                        for chunk in slice.chunks(burst) {
                            let sent: Vec<_> = chunk
                                .iter()
                                .map(|&s| {
                                    let request = make(s, step, &mut rng);
                                    (Instant::now(), pool.request(request))
                                })
                                .collect();
                            for (start, reply) in sent {
                                let response = reply.recv().expect("pool always answers");
                                out.push((
                                    response.status().is_success(),
                                    start.elapsed().as_micros() as u64,
                                ));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    ScenarioResult {
        name,
        sessions,
        requests,
        shed,
        notes: Vec::new(),
        latencies_us: outcomes
            .into_iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, us)| us)
            .collect(),
    }
    .finish()
}

/// Back-button readers: each session remembers the last few
/// `(path, generation)` pairs it was served and replays them with
/// `x-navsep-at-generation` (the Brewster–Jeffrey back stack over the
/// retention ring), revalidating with `x-navsep-if-generation`. Closed
/// loop (burst 1) because every next request depends on the last answer.
/// A background publisher churns the store throughout, so the ring
/// really moves: old enough replays degrade (explicitly) and their
/// conditional checks come back stale.
fn back_button_scenario(
    pool: &ServerPool,
    store: &Arc<ShardedSiteStore>,
    cdf: &[u64],
    sessions: usize,
    per_session: usize,
) -> ScenarioResult {
    struct Tally {
        outcomes: Vec<(bool, u64)>,
        degraded: u64,
        stale: u64,
    }
    let stop = Arc::new(AtomicBool::new(false));
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        {
            let store = Arc::clone(store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut revision = store.generation();
                while !stop.load(Ordering::Acquire) {
                    revision += 1;
                    store.publish_incremental(&corpus(revision));
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            });
        }
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBACC ^ (t as u64) << 32);
                    let slice: Vec<usize> =
                        (0..sessions).filter(|s| s % CLIENT_THREADS == t).collect();
                    // Per-session memory: a small ring of served entries.
                    let mut memory: Vec<Vec<(String, u64)>> = vec![Vec::new(); slice.len()];
                    let mut tally = Tally {
                        outcomes: Vec::with_capacity(slice.len() * per_session),
                        degraded: 0,
                        stale: 0,
                    };
                    for step in 0..per_session {
                        for (i, _) in slice.iter().enumerate() {
                            let ring = &mut memory[i];
                            let replay = !ring.is_empty() && rng.gen_range(0u32..100) < 50;
                            let request = if replay {
                                let (path, generation) =
                                    ring[rng.gen_range(0usize..ring.len())].clone();
                                Request::get(path)
                                    .header(AT_GENERATION_HEADER, generation.to_string())
                                    .header(IF_GENERATION_HEADER, generation.to_string())
                            } else {
                                Request::get(page_path(sample_zipf(cdf, &mut rng)))
                            };
                            let path = request.path().to_string();
                            let start = Instant::now();
                            let response =
                                pool.request(request).recv().expect("pool always answers");
                            let ok = response.status().is_success();
                            tally
                                .outcomes
                                .push((ok, start.elapsed().as_micros() as u64));
                            if response.header_value(DEGRADED_HEADER).is_some() {
                                tally.degraded += 1;
                            }
                            if response.header_value(STALE_HEADER) == Some("stale") {
                                tally.stale += 1;
                            }
                            if ok && !replay {
                                if let Some(generation) = response
                                    .header_value(GENERATION_HEADER)
                                    .and_then(|v| v.parse::<u64>().ok())
                                {
                                    ring.push((path, generation));
                                    if ring.len() > 8 {
                                        ring.remove(0);
                                    }
                                }
                            }
                            let _ = step;
                        }
                    }
                    tally
                })
            })
            .collect();
        let tallies = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        stop.store(true, Ordering::Release);
        tallies
    });
    let mut outcomes = Vec::new();
    let mut degraded = 0u64;
    let mut stale = 0u64;
    for tally in tallies {
        outcomes.extend(tally.outcomes);
        degraded += tally.degraded;
        stale += tally.stale;
    }
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    ScenarioResult {
        name: "back_button",
        sessions,
        requests,
        shed,
        notes: vec![
            ("degraded_time_travels", degraded),
            ("stale_verdicts", stale),
        ],
        latencies_us: outcomes
            .into_iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, us)| us)
            .collect(),
    }
    .finish()
}

/// The zipf mix over real TCP keep-alive connections: each client thread
/// holds one connection through the [`HttpListener`] and runs its sessions
/// closed-loop over it — every byte crosses the loopback socket.
fn wire_scenario(
    listener: &HttpListener,
    cdf: &[u64],
    sessions: usize,
    per_session: usize,
) -> ScenarioResult {
    let addr = listener.local_addr();
    let outcomes: Vec<(bool, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x3132 ^ (t as u64) << 32);
                    let slice = (0..sessions).filter(|s| s % CLIENT_THREADS == t).count();
                    let stream = TcpStream::connect(addr).expect("connect to listener");
                    let mut reader =
                        BufReader::new(stream.try_clone().expect("clone client socket"));
                    let mut writer = stream;
                    let mut out = Vec::with_capacity(slice * per_session);
                    for _ in 0..per_session {
                        for s in 0..slice {
                            let head = s % 7 == 0;
                            let page = sample_zipf(cdf, &mut rng);
                            let request = if head {
                                Request::head(page_path(page))
                            } else {
                                Request::get(page_path(page))
                            };
                            let start = Instant::now();
                            writer.write_all(&serialize_request(&request)).unwrap();
                            writer.flush().unwrap();
                            let response =
                                read_response(&mut reader, head).expect("listener always answers");
                            out.push((
                                (200..300).contains(&response.status),
                                start.elapsed().as_micros() as u64,
                            ));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("wire client thread"))
            .collect()
    });
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    ScenarioResult {
        name: "wire",
        sessions,
        requests,
        shed,
        notes: Vec::new(),
        latencies_us: outcomes
            .into_iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, us)| us)
            .collect(),
    }
    .finish()
}

/// OS threads of the current process, from `/proc/self/status` (Linux).
fn os_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// The `--c10k-client` subprocess: opens `sockets` keep-alive connections
/// to `addr`, reports `READY`, then (on `GO`) drives zipf-hot pipelined
/// bursts over the first `active` sockets while the rest idle. Prints one
/// `RESULT` line (shed count + per-request latencies) and holds every
/// socket open until `EXIT`, so the parent can verify the concurrent
/// floor at leisure.
fn c10k_client_main(args: &[String]) {
    let addr = &args[0];
    let sockets: usize = args[1].parse().expect("socket count");
    let active: usize = args[2].parse().expect("active count");
    let rounds: usize = args[3].parse().expect("round count");
    let seed: u64 = args[4].parse().expect("seed");

    let mut conns = Vec::with_capacity(sockets);
    for _ in 0..sockets {
        loop {
            match TcpStream::connect(addr.as_str()) {
                Ok(stream) => {
                    conns.push(stream);
                    break;
                }
                // Backlog pressure: retry until the listener catches up.
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }
    let mut readers: Vec<BufReader<TcpStream>> = conns[..active]
        .iter()
        .map(|stream| {
            let _ = stream.set_nodelay(true);
            BufReader::new(stream.try_clone().expect("clone active socket"))
        })
        .collect();
    println!("READY {}", conns.len());
    std::io::stdout().flush().expect("flush READY");

    let mut lines = BufReader::new(std::io::stdin()).lines();
    let go = lines.next().expect("GO line").expect("readable stdin");
    assert_eq!(go.trim(), "GO", "unexpected parent command");

    let cdf = zipf_cdf();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies: Vec<u64> = Vec::with_capacity(rounds * active * C10K_BURST);
    let mut shed = 0usize;
    for _ in 0..rounds {
        for a in 0..active {
            let mut segment = Vec::with_capacity(C10K_BURST * 64);
            let mut heads = [false; C10K_BURST];
            for (b, head) in heads.iter_mut().enumerate() {
                *head = b % 9 == 0;
                let path = page_path(sample_zipf(&cdf, &mut rng));
                let request = if *head {
                    Request::head(path)
                } else {
                    Request::get(path)
                };
                segment.extend_from_slice(&serialize_request(&request));
            }
            // True pipelining: the whole burst goes out before any
            // response is read; latency for request i is measured at the
            // moment response i comes back.
            let start = Instant::now();
            conns[a].write_all(&segment).expect("write burst");
            conns[a].flush().expect("flush burst");
            for head in heads {
                let response =
                    read_response(&mut readers[a], head).expect("listener always answers");
                if (200..300).contains(&response.status) {
                    latencies.push(start.elapsed().as_micros() as u64);
                } else {
                    shed += 1;
                }
            }
        }
    }

    let list = latencies
        .iter()
        .map(|us| us.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!("RESULT shed={shed} lat={list}");
    std::io::stdout().flush().expect("flush RESULT");

    let exit = lines.next().expect("EXIT line").expect("readable stdin");
    assert_eq!(exit.trim(), "EXIT", "unexpected parent command");
    drop(conns);
}

/// Reads child stdout lines until one starting with `prefix` appears.
fn await_line(reader: &mut impl BufRead, prefix: &str) -> String {
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("child stdout readable");
        assert!(n > 0, "child exited before printing {prefix}");
        if line.starts_with(prefix) {
            return line.trim_end().to_string();
        }
    }
}

/// The c10k scenario: ≥10 000 concurrent keep-alive sockets against a
/// dedicated event-loop listener, client fds spread across subprocesses.
/// Asserts the concurrent-socket floor and the OS-thread bound while the
/// fleet is connected; returns `None` (with a note) off Linux.
fn c10k_scenario(handler: &Arc<ShardedSiteHandler>, smoke: bool) -> Option<ScenarioResult> {
    if !cfg!(target_os = "linux") {
        println!("c10k: skipped (requires Linux epoll + /proc/self/status)");
        return None;
    }
    let total_sockets = C10K_CLIENTS * C10K_SOCKETS_PER_CLIENT;
    let rounds = if smoke { 4 } else { 24 };
    let baseline_threads = os_thread_count().expect("read /proc/self/status");
    let listener = HttpListener::bind(
        "127.0.0.1:0",
        Arc::clone(handler),
        ListenerConfig::new(C10K_WORKERS)
            .loops(C10K_LOOPS)
            .max_connections(total_sockets + 1_800)
            .keep_alive_timeout(Duration::from_secs(60)),
    )
    .expect("bind c10k listener");
    let addr = listener.local_addr().to_string();

    let exe = std::env::current_exe().expect("own executable path");
    let mut children: Vec<(Child, BufReader<std::process::ChildStdout>)> = (0..C10K_CLIENTS)
        .map(|c| {
            let mut child = Command::new(&exe)
                .arg("--c10k-client")
                .arg(&addr)
                .arg(C10K_SOCKETS_PER_CLIENT.to_string())
                .arg(C10K_ACTIVE_PER_CLIENT.to_string())
                .arg(rounds.to_string())
                .arg((0xC10C ^ ((c as u64) << 32)).to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn c10k client");
            let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
            (child, stdout)
        })
        .collect();

    // Phase 1: every client connects its full socket fleet.
    let mut connected = 0usize;
    for (_, stdout) in &mut children {
        let ready = await_line(stdout, "READY ");
        connected += ready["READY ".len()..]
            .parse::<usize>()
            .expect("READY count");
    }
    assert_eq!(connected, total_sockets, "every client socket connected");
    // Accepts lag connects (the backlog is server-side); wait for the
    // listener to adopt the whole fleet.
    let adopt_deadline = Instant::now() + Duration::from_secs(60);
    while listener.stats().open_now < total_sockets as u64 && Instant::now() < adopt_deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = listener.stats();
    let os_threads = os_thread_count().expect("read /proc/self/status");
    let concurrent = stats.open_now;
    println!(
        "c10k: {concurrent} sockets open concurrently, {os_threads} OS threads \
         (baseline {baseline_threads}, {C10K_LOOPS} loops + {C10K_WORKERS} workers)"
    );
    assert!(
        concurrent >= 10_000,
        "c10k floor: need >=10000 concurrent sockets, listener holds {concurrent}"
    );
    // The whole point: the thread count must not scale with sockets. The
    // listener adds loops + workers (+ small constant for pool plumbing);
    // nothing per-connection.
    assert!(
        os_threads <= baseline_threads + (C10K_LOOPS + C10K_WORKERS) as u64 + 4,
        "thread count must be loops + workers + O(1), not O(connections): \
         {os_threads} threads over a baseline of {baseline_threads}"
    );

    // Phase 2: traffic over the zipf-hot active subset; the other ~96% of
    // sockets stay idle in keep-alive the whole time.
    let started = Instant::now();
    for (child, _) in &mut children {
        let stdin = child.stdin.as_mut().expect("child stdin");
        stdin.write_all(b"GO\n").expect("send GO");
        stdin.flush().expect("flush GO");
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut shed = 0usize;
    for (_, stdout) in &mut children {
        let result = await_line(stdout, "RESULT ");
        let rest = &result["RESULT ".len()..];
        let (shed_part, lat_part) = rest.split_once(" lat=").expect("RESULT format");
        shed += shed_part
            .strip_prefix("shed=")
            .expect("RESULT format")
            .parse::<usize>()
            .expect("shed count");
        latencies.extend(
            lat_part
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<u64>().expect("latency sample")),
        );
    }
    let elapsed = started.elapsed();
    // Sockets are still held open; snapshot the peak before release.
    let peak = listener.stats().peak_open;
    for (child, _) in &mut children {
        let stdin = child.stdin.as_mut().expect("child stdin");
        stdin.write_all(b"EXIT\n").expect("send EXIT");
        stdin.flush().expect("flush EXIT");
    }
    for (mut child, _) in children {
        let status = child.wait().expect("child exit");
        assert!(status.success(), "c10k client failed: {status}");
    }
    let requests = latencies.len() + shed;
    println!(
        "c10k: {requests} requests over the active subset in {elapsed:.2?}, \
         {shed} shed, peak {peak} sockets"
    );
    listener.shutdown();
    Some(
        ScenarioResult {
            name: "c10k",
            sessions: total_sockets,
            requests,
            shed,
            notes: vec![
                ("concurrent_sockets", concurrent),
                ("peak_sockets", peak),
                ("os_threads", os_threads),
                ("baseline_threads", baseline_threads),
                ("loops", C10K_LOOPS as u64),
                ("pool_workers", C10K_WORKERS as u64),
            ],
            latencies_us: latencies,
        }
        .finish(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--c10k-client") {
        c10k_client_main(&args[pos + 1..]);
        return;
    }
    let smoke = smoke_mode();
    let scale = if smoke { 1 } else { 4 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The served store: a warm history of generations over a bounded ring.
    let store = Arc::new(ShardedSiteStore::with_retention(16, RETENTION));
    for revision in 1..=WARM_GENERATIONS {
        store.publish(&corpus(revision));
    }
    let handler = Arc::new(ShardedSiteHandler::new(Arc::clone(&store)));
    let pool = ServerPool::start_with(
        Arc::clone(&handler),
        PoolConfig::new(CLIENT_THREADS).queue_capacity(1024),
    );
    let listener = HttpListener::bind(
        "127.0.0.1:0",
        Arc::clone(&handler),
        ListenerConfig::new(CLIENT_THREADS),
    )
    .expect("bind traffic listener");
    let cdf = zipf_cdf();

    banner(&format!(
        "traffic_fleet — scenario sweep over {PAGES}+2 paths, {WARM_GENERATIONS} warm \
         generations, ring of {RETENTION}, {cores} core(s){}",
        if smoke { " (smoke)" } else { "" }
    ));

    let started = Instant::now();
    let mut results: Vec<ScenarioResult> = Vec::new();

    // zipf: popularity-skewed reads, the bread-and-butter load.
    results.push(drive(
        "zipf",
        &pool,
        4000,
        100 * scale,
        32,
        0x21BF,
        |_, _, rng| Request::get(page_path(sample_zipf(&cdf, rng))),
    ));

    // back_button: history replays through the retention ring.
    results.push(back_button_scenario(&pool, &store, &cdf, 3000, 100 * scale));

    // crawler: full-site sweeps in path order, every 4th crawler HEADs.
    let all_paths: Vec<String> = (0..PAGES)
        .map(page_path)
        .chain(["index.html".to_string(), "style.css".to_string()])
        .collect();
    let sweep = all_paths.len();
    results.push(drive(
        "crawler",
        &pool,
        240,
        sweep * scale,
        64,
        0xC4A1,
        |s, step, _| {
            let path = all_paths[step % sweep].clone();
            if s % 4 == 0 {
                Request::head(path)
            } else {
                Request::get(path)
            }
        },
    ));

    // flash_crowd: everyone on one page — one shard takes the spike.
    results.push(drive(
        "flash_crowd",
        &pool,
        2500,
        60 * scale,
        64,
        0xF1A5,
        |_, _, _| Request::get(page_path(7)),
    ));

    // publish_storm: publishes land mid-traffic; readers carry
    // if-generation so the churn is observable in the responses.
    {
        let stop = Arc::new(AtomicBool::new(false));
        let publishes = std::thread::scope(|scope| {
            let publisher = {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut published = 0u64;
                    let mut revision = store.generation();
                    while !stop.load(Ordering::Acquire) {
                        revision += 1;
                        store.publish_incremental(&corpus(revision));
                        published += 1;
                    }
                    published
                })
            };
            let result = drive(
                "publish_storm",
                &pool,
                1000,
                60 * scale,
                16,
                0x5702,
                |_, _, rng| {
                    Request::get(page_path(sample_zipf(&cdf, rng)))
                        .header(IF_GENERATION_HEADER, WARM_GENERATIONS.to_string())
                },
            );
            stop.store(true, Ordering::Release);
            let published = publisher.join().expect("publisher thread");
            let mut result = result;
            result.notes.push(("publishes_landed", published));
            results.push(result);
            published
        });
        assert!(publishes >= 1, "the storm must land at least one publish");
    }

    // wire: the same mix over real TCP through the HttpListener.
    results.push(wire_scenario(&listener, &cdf, 680, 80 * scale));

    // c10k: ten thousand concurrent sockets on a bounded thread count.
    let c10k_ran = match c10k_scenario(&handler, smoke) {
        Some(result) => {
            results.push(result);
            true
        }
        None => false,
    };

    let elapsed = started.elapsed();

    // Report.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.sessions.to_string(),
                r.requests.to_string(),
                format!("{:.2}%", r.shed_rate() * 100.0),
                format!("{}us", r.p50()),
                format!("{}us", r.p99()),
            ]
        })
        .collect();
    print_table(
        &["scenario", "sessions", "requests", "shed", "p50", "p99"],
        &rows,
    );

    let total_requests: usize = results.iter().map(|r| r.requests).sum();
    let total_sessions: usize = results.iter().map(|r| r.sessions).sum();
    let total_shed: usize = results.iter().map(|r| r.shed).sum();
    let throughput = total_requests as f64 / elapsed.as_secs_f64();
    println!();
    println!(
        "fleet: {total_requests} requests across {total_sessions} sessions in {elapsed:.2?} \
         ({throughput:.0} req/s), {total_shed} shed, final generation {}",
        store.generation()
    );
    println!(
        "wire front end: {} connections accepted, {} requests served over TCP",
        listener.connections_accepted(),
        listener.requests_served(),
    );

    // Record every scenario plus the fleet totals.
    let path = traffic_json_path();
    for result in &results {
        record_bench_section_in(&path, result.name, &result.json());
    }
    record_bench_section_in(
        &path,
        "fleet",
        &format!(
            "{{\"requests\": {total_requests}, \"sessions\": {total_sessions}, \
             \"shed\": {total_shed}, \"elapsed_s\": {:.2}, \"req_per_s\": {throughput:.0}, \
             \"cores\": {cores}, \"smoke\": {smoke}}}",
            elapsed.as_secs_f64(),
        ),
    );
    println!("recorded: {}", path.display());

    // Acceptance gates (hold in smoke and full mode alike).
    assert!(
        total_requests >= 1_000_000,
        "fleet must complete at least 1M requests (got {total_requests})"
    );
    assert!(
        total_sessions >= 10_000,
        "fleet must span at least 10k sessions (got {total_sessions})"
    );
    let wire = results.iter().find(|r| r.name == "wire").expect("wire ran");
    assert!(
        wire.shed == 0 || wire.shed < wire.requests,
        "the wire path must answer"
    );
    if c10k_ran {
        // The floor and the thread bound were asserted live, while the
        // fleet was connected; here we only re-check the recorded note.
        let c10k = results.iter().find(|r| r.name == "c10k").expect("c10k ran");
        let sockets = c10k
            .notes
            .iter()
            .find(|(k, _)| *k == "concurrent_sockets")
            .map_or(0, |(_, v)| *v);
        assert!(
            sockets >= 10_000,
            "c10k must record its >=10k concurrent-socket floor (got {sockets})"
        );
    } else {
        assert!(
            !cfg!(target_os = "linux"),
            "c10k must run on Linux; it only skips elsewhere"
        );
    }
    let back = results
        .iter()
        .find(|r| r.name == "back_button")
        .expect("back_button ran");
    let note = |name: &str| {
        back.notes
            .iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(
        note("degraded_time_travels") >= 1,
        "churn must push some replays past the retention horizon"
    );
    assert!(
        note("stale_verdicts") >= 1,
        "churn must make some conditional checks come back stale"
    );
    assert!(
        store.generation() > WARM_GENERATIONS,
        "the publish storm must advance the generation"
    );
    pool.shutdown();
    listener.shutdown();
    println!("\nOK — every request answered; per-scenario numbers recorded.");
}
