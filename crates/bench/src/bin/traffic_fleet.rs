//! Traffic fleet: a million-request, ten-thousand-session scenario sweep
//! against the sharded serving stack, with one scenario driven over the
//! real TCP front end.
//!
//! Each scenario models a distinct traffic shape the ROADMAP's serving
//! item calls for:
//!
//! | scenario | shape |
//! |----------|-------|
//! | `zipf` | page popularity follows a zipf(1.1) law — a few hot pages, a long tail |
//! | `back_button` | readers replay history entries with `x-navsep-at-generation` (the retention ring) and revalidate with `x-navsep-if-generation` |
//! | `crawler` | full-site sweeps, every path in order, GET and HEAD |
//! | `flash_crowd` | thousands of sessions hammer one page (one shard) at once |
//! | `publish_storm` | publishes land mid-traffic; sessions observe generation churn |
//! | `wire` | the zipf mix over real TCP keep-alive connections through `HttpListener` |
//!
//! Per-scenario requests, shed rate, and served p50/p99 land in
//! `BENCH_traffic.json` (merge-writer format, one section per scenario
//! plus a `fleet` section with totals and the honest core count).
//!
//! Usage: `cargo run --release -p navsep-bench --bin traffic_fleet [-- --smoke]`
//! (`--smoke`, or `TRAFFIC_FLEET_SMOKE=1`, is the CI-sized run — it still
//! completes ≥1M requests across ≥10k sessions; the full run quadruples
//! per-session request counts).

use navsep_bench::{banner, print_table, record_bench_section_in, traffic_json_path};
use navsep_web::wire::{read_response, serialize_request};
use navsep_web::{
    HttpListener, ListenerConfig, PoolConfig, Request, ServerPool, ShardedSiteHandler,
    ShardedSiteStore, Site, AT_GENERATION_HEADER, DEGRADED_HEADER, GENERATION_HEADER,
    IF_GENERATION_HEADER, STALE_HEADER,
};
use navsep_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pages in the served corpus (plus `index.html` and `style.css`).
const PAGES: usize = 400;
/// Generations published before traffic starts.
const WARM_GENERATIONS: u64 = 6;
/// Retained-epoch ring depth — smaller than the publish churn, so
/// back-button time travel really hits the horizon sometimes.
const RETENTION: usize = 4;
/// Client threads per scenario (logical sessions are multiplexed on top).
const CLIENT_THREADS: usize = 4;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("TRAFFIC_FLEET_SMOKE").is_ok_and(|v| v == "1")
}

fn page_path(i: usize) -> String {
    format!("page-{i:03}.xml")
}

/// The corpus at a given content revision.
fn corpus(revision: u64) -> Site {
    let mut site = Site::new();
    for i in 0..PAGES {
        site.put_document(
            &page_path(i),
            Document::parse(&format!(
                "<exhibit id=\"e{i}\" rev=\"{revision}\"><title>Exhibit {i}</title>\
                 <body>wing {} case {}</body></exhibit>",
                i % 12,
                i % 37,
            ))
            .expect("corpus page is well-formed"),
        );
    }
    site.put_page(
        "index.html",
        Document::parse(&format!(
            "<html><body><h1>Museum rev {revision}</h1></body></html>"
        ))
        .expect("index is well-formed"),
    );
    site.put_css("style.css", "body { margin: 0 }");
    site
}

/// Cumulative zipf(1.1) weights over the page ranks, for integer sampling.
fn zipf_cdf() -> Vec<u64> {
    let mut cdf = Vec::with_capacity(PAGES);
    let mut total = 0u64;
    for rank in 0..PAGES {
        total += (1e9 / ((rank + 1) as f64).powf(1.1)) as u64;
        cdf.push(total);
    }
    cdf
}

fn sample_zipf(cdf: &[u64], rng: &mut StdRng) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let pick = rng.gen_range(0u64..total);
    cdf.partition_point(|&c| c <= pick)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// What one scenario hands back: counts plus the served-latency
/// distribution in microseconds.
struct ScenarioResult {
    name: &'static str,
    sessions: usize,
    requests: usize,
    shed: usize,
    /// Scenario-specific extras (degraded time travels, stale verdicts…).
    notes: Vec<(&'static str, u64)>,
    latencies_us: Vec<u64>,
}

impl ScenarioResult {
    fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    fn finish(mut self) -> Self {
        self.latencies_us.sort_unstable();
        self
    }

    fn p50(&self) -> u64 {
        percentile(&self.latencies_us, 50.0)
    }

    fn p99(&self) -> u64 {
        percentile(&self.latencies_us, 99.0)
    }

    fn json(&self) -> String {
        let notes = self
            .notes
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v}"))
            .collect::<String>();
        format!(
            "{{\"sessions\": {}, \"requests\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
             \"served_p50_us\": {}, \"served_p99_us\": {}{notes}}}",
            self.sessions,
            self.requests,
            self.shed,
            self.shed_rate(),
            self.p50(),
            self.p99(),
        )
    }
}

/// Drives `sessions` logical sessions, each issuing `per_session` requests
/// built by `make` (called with session id, step, rng), in pipelined
/// bursts of `burst` per client thread. Sessions are partitioned across
/// [`CLIENT_THREADS`] threads and interleaved round-robin, so every
/// session in a thread's slice is mid-stream concurrently for the whole
/// scenario.
fn drive<F>(
    name: &'static str,
    pool: &ServerPool,
    sessions: usize,
    per_session: usize,
    burst: usize,
    seed: u64,
    make: F,
) -> ScenarioResult
where
    F: Fn(usize, usize, &mut StdRng) -> Request + Sync,
{
    let make = &make;
    let outcomes: Vec<(bool, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64) << 32);
                    let slice: Vec<usize> =
                        (0..sessions).filter(|s| s % CLIENT_THREADS == t).collect();
                    let mut out = Vec::with_capacity(slice.len() * per_session);
                    // Round-robin across the slice: step 0 for every
                    // session, then step 1, … — all sessions stay live.
                    for step in 0..per_session {
                        for chunk in slice.chunks(burst) {
                            let sent: Vec<_> = chunk
                                .iter()
                                .map(|&s| {
                                    let request = make(s, step, &mut rng);
                                    (Instant::now(), pool.request(request))
                                })
                                .collect();
                            for (start, reply) in sent {
                                let response = reply.recv().expect("pool always answers");
                                out.push((
                                    response.status().is_success(),
                                    start.elapsed().as_micros() as u64,
                                ));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    ScenarioResult {
        name,
        sessions,
        requests,
        shed,
        notes: Vec::new(),
        latencies_us: outcomes
            .into_iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, us)| us)
            .collect(),
    }
    .finish()
}

/// Back-button readers: each session remembers the last few
/// `(path, generation)` pairs it was served and replays them with
/// `x-navsep-at-generation` (the Brewster–Jeffrey back stack over the
/// retention ring), revalidating with `x-navsep-if-generation`. Closed
/// loop (burst 1) because every next request depends on the last answer.
/// A background publisher churns the store throughout, so the ring
/// really moves: old enough replays degrade (explicitly) and their
/// conditional checks come back stale.
fn back_button_scenario(
    pool: &ServerPool,
    store: &Arc<ShardedSiteStore>,
    cdf: &[u64],
    sessions: usize,
    per_session: usize,
) -> ScenarioResult {
    struct Tally {
        outcomes: Vec<(bool, u64)>,
        degraded: u64,
        stale: u64,
    }
    let stop = Arc::new(AtomicBool::new(false));
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        {
            let store = Arc::clone(store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut revision = store.generation();
                while !stop.load(Ordering::Acquire) {
                    revision += 1;
                    store.publish_incremental(&corpus(revision));
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            });
        }
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBACC ^ (t as u64) << 32);
                    let slice: Vec<usize> =
                        (0..sessions).filter(|s| s % CLIENT_THREADS == t).collect();
                    // Per-session memory: a small ring of served entries.
                    let mut memory: Vec<Vec<(String, u64)>> = vec![Vec::new(); slice.len()];
                    let mut tally = Tally {
                        outcomes: Vec::with_capacity(slice.len() * per_session),
                        degraded: 0,
                        stale: 0,
                    };
                    for step in 0..per_session {
                        for (i, _) in slice.iter().enumerate() {
                            let ring = &mut memory[i];
                            let replay = !ring.is_empty() && rng.gen_range(0u32..100) < 50;
                            let request = if replay {
                                let (path, generation) =
                                    ring[rng.gen_range(0usize..ring.len())].clone();
                                Request::get(path)
                                    .header(AT_GENERATION_HEADER, generation.to_string())
                                    .header(IF_GENERATION_HEADER, generation.to_string())
                            } else {
                                Request::get(page_path(sample_zipf(cdf, &mut rng)))
                            };
                            let path = request.path().to_string();
                            let start = Instant::now();
                            let response =
                                pool.request(request).recv().expect("pool always answers");
                            let ok = response.status().is_success();
                            tally
                                .outcomes
                                .push((ok, start.elapsed().as_micros() as u64));
                            if response.header_value(DEGRADED_HEADER).is_some() {
                                tally.degraded += 1;
                            }
                            if response.header_value(STALE_HEADER) == Some("stale") {
                                tally.stale += 1;
                            }
                            if ok && !replay {
                                if let Some(generation) = response
                                    .header_value(GENERATION_HEADER)
                                    .and_then(|v| v.parse::<u64>().ok())
                                {
                                    ring.push((path, generation));
                                    if ring.len() > 8 {
                                        ring.remove(0);
                                    }
                                }
                            }
                            let _ = step;
                        }
                    }
                    tally
                })
            })
            .collect();
        let tallies = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        stop.store(true, Ordering::Release);
        tallies
    });
    let mut outcomes = Vec::new();
    let mut degraded = 0u64;
    let mut stale = 0u64;
    for tally in tallies {
        outcomes.extend(tally.outcomes);
        degraded += tally.degraded;
        stale += tally.stale;
    }
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    ScenarioResult {
        name: "back_button",
        sessions,
        requests,
        shed,
        notes: vec![
            ("degraded_time_travels", degraded),
            ("stale_verdicts", stale),
        ],
        latencies_us: outcomes
            .into_iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, us)| us)
            .collect(),
    }
    .finish()
}

/// The zipf mix over real TCP keep-alive connections: each client thread
/// holds one connection through the [`HttpListener`] and runs its sessions
/// closed-loop over it — every byte crosses the loopback socket.
fn wire_scenario(
    listener: &HttpListener,
    cdf: &[u64],
    sessions: usize,
    per_session: usize,
) -> ScenarioResult {
    let addr = listener.local_addr();
    let outcomes: Vec<(bool, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x3132 ^ (t as u64) << 32);
                    let slice = (0..sessions).filter(|s| s % CLIENT_THREADS == t).count();
                    let stream = TcpStream::connect(addr).expect("connect to listener");
                    let mut reader =
                        BufReader::new(stream.try_clone().expect("clone client socket"));
                    let mut writer = stream;
                    let mut out = Vec::with_capacity(slice * per_session);
                    for _ in 0..per_session {
                        for s in 0..slice {
                            let head = s % 7 == 0;
                            let page = sample_zipf(cdf, &mut rng);
                            let request = if head {
                                Request::head(page_path(page))
                            } else {
                                Request::get(page_path(page))
                            };
                            let start = Instant::now();
                            writer.write_all(&serialize_request(&request)).unwrap();
                            writer.flush().unwrap();
                            let response =
                                read_response(&mut reader, head).expect("listener always answers");
                            out.push((
                                (200..300).contains(&response.status),
                                start.elapsed().as_micros() as u64,
                            ));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("wire client thread"))
            .collect()
    });
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    ScenarioResult {
        name: "wire",
        sessions,
        requests,
        shed,
        notes: Vec::new(),
        latencies_us: outcomes
            .into_iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, us)| us)
            .collect(),
    }
    .finish()
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { 1 } else { 4 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The served store: a warm history of generations over a bounded ring.
    let store = Arc::new(ShardedSiteStore::with_retention(16, RETENTION));
    for revision in 1..=WARM_GENERATIONS {
        store.publish(&corpus(revision));
    }
    let handler = Arc::new(ShardedSiteHandler::new(Arc::clone(&store)));
    let pool = ServerPool::start_with(
        Arc::clone(&handler),
        PoolConfig::new(CLIENT_THREADS).queue_capacity(1024),
    );
    let listener = HttpListener::bind(
        "127.0.0.1:0",
        Arc::clone(&handler),
        ListenerConfig::new(CLIENT_THREADS),
    )
    .expect("bind traffic listener");
    let cdf = zipf_cdf();

    banner(&format!(
        "traffic_fleet — scenario sweep over {PAGES}+2 paths, {WARM_GENERATIONS} warm \
         generations, ring of {RETENTION}, {cores} core(s){}",
        if smoke { " (smoke)" } else { "" }
    ));

    let started = Instant::now();
    let mut results: Vec<ScenarioResult> = Vec::new();

    // zipf: popularity-skewed reads, the bread-and-butter load.
    results.push(drive(
        "zipf",
        &pool,
        4000,
        100 * scale,
        32,
        0x21BF,
        |_, _, rng| Request::get(page_path(sample_zipf(&cdf, rng))),
    ));

    // back_button: history replays through the retention ring.
    results.push(back_button_scenario(&pool, &store, &cdf, 3000, 100 * scale));

    // crawler: full-site sweeps in path order, every 4th crawler HEADs.
    let all_paths: Vec<String> = (0..PAGES)
        .map(page_path)
        .chain(["index.html".to_string(), "style.css".to_string()])
        .collect();
    let sweep = all_paths.len();
    results.push(drive(
        "crawler",
        &pool,
        240,
        sweep * scale,
        64,
        0xC4A1,
        |s, step, _| {
            let path = all_paths[step % sweep].clone();
            if s % 4 == 0 {
                Request::head(path)
            } else {
                Request::get(path)
            }
        },
    ));

    // flash_crowd: everyone on one page — one shard takes the spike.
    results.push(drive(
        "flash_crowd",
        &pool,
        2500,
        60 * scale,
        64,
        0xF1A5,
        |_, _, _| Request::get(page_path(7)),
    ));

    // publish_storm: publishes land mid-traffic; readers carry
    // if-generation so the churn is observable in the responses.
    {
        let stop = Arc::new(AtomicBool::new(false));
        let publishes = std::thread::scope(|scope| {
            let publisher = {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut published = 0u64;
                    let mut revision = store.generation();
                    while !stop.load(Ordering::Acquire) {
                        revision += 1;
                        store.publish_incremental(&corpus(revision));
                        published += 1;
                    }
                    published
                })
            };
            let result = drive(
                "publish_storm",
                &pool,
                1000,
                60 * scale,
                16,
                0x5702,
                |_, _, rng| {
                    Request::get(page_path(sample_zipf(&cdf, rng)))
                        .header(IF_GENERATION_HEADER, WARM_GENERATIONS.to_string())
                },
            );
            stop.store(true, Ordering::Release);
            let published = publisher.join().expect("publisher thread");
            let mut result = result;
            result.notes.push(("publishes_landed", published));
            results.push(result);
            published
        });
        assert!(publishes >= 1, "the storm must land at least one publish");
    }

    // wire: the same mix over real TCP through the HttpListener.
    results.push(wire_scenario(&listener, &cdf, 680, 80 * scale));

    let elapsed = started.elapsed();

    // Report.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.sessions.to_string(),
                r.requests.to_string(),
                format!("{:.2}%", r.shed_rate() * 100.0),
                format!("{}us", r.p50()),
                format!("{}us", r.p99()),
            ]
        })
        .collect();
    print_table(
        &["scenario", "sessions", "requests", "shed", "p50", "p99"],
        &rows,
    );

    let total_requests: usize = results.iter().map(|r| r.requests).sum();
    let total_sessions: usize = results.iter().map(|r| r.sessions).sum();
    let total_shed: usize = results.iter().map(|r| r.shed).sum();
    let throughput = total_requests as f64 / elapsed.as_secs_f64();
    println!();
    println!(
        "fleet: {total_requests} requests across {total_sessions} sessions in {elapsed:.2?} \
         ({throughput:.0} req/s), {total_shed} shed, final generation {}",
        store.generation()
    );
    println!(
        "wire front end: {} connections accepted, {} requests served over TCP",
        listener.connections_accepted(),
        listener.requests_served(),
    );

    // Record every scenario plus the fleet totals.
    let path = traffic_json_path();
    for result in &results {
        record_bench_section_in(&path, result.name, &result.json());
    }
    record_bench_section_in(
        &path,
        "fleet",
        &format!(
            "{{\"requests\": {total_requests}, \"sessions\": {total_sessions}, \
             \"shed\": {total_shed}, \"elapsed_s\": {:.2}, \"req_per_s\": {throughput:.0}, \
             \"cores\": {cores}, \"smoke\": {smoke}}}",
            elapsed.as_secs_f64(),
        ),
    );
    println!("recorded: {}", path.display());

    // Acceptance gates (hold in smoke and full mode alike).
    assert!(
        total_requests >= 1_000_000,
        "fleet must complete at least 1M requests (got {total_requests})"
    );
    assert!(
        total_sessions >= 10_000,
        "fleet must span at least 10k sessions (got {total_sessions})"
    );
    let wire = results.iter().find(|r| r.name == "wire").expect("wire ran");
    assert!(
        wire.shed == 0 || wire.shed < wire.requests,
        "the wire path must answer"
    );
    let back = results
        .iter()
        .find(|r| r.name == "back_button")
        .expect("back_button ran");
    let note = |name: &str| {
        back.notes
            .iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(
        note("degraded_time_travels") >= 1,
        "churn must push some replays past the retention horizon"
    );
    assert!(
        note("stale_verdicts") >= 1,
        "churn must make some conditional checks come back stale"
    );
    assert!(
        store.generation() > WARM_GENERATIONS,
        "the publish storm must advance the generation"
    );
    pool.shutdown();
    listener.shutdown();
    println!("\nOK — every request answered; per-scenario numbers recorded.");
}
