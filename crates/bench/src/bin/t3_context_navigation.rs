//! Table T3 regenerator: the paper's §2 scenarios, observed through a real
//! navigation session on the woven site.
//!
//! 1. **Context-dependent "Next"** — reach the Guitar painting via its
//!    author, Next goes to Guernica; reach it via Cubism, Next goes to Les
//!    Demoiselles d'Avignon (another Cubist work, by context order).
//! 2. **Scrolling is not navigation** — the Google-style "more results"
//!    links of §2 carry no navigational context; the session's context stays
//!    unchanged when following them.

use navsep_bench::{banner, print_table};
use navsep_core::museum::{museum_navigation, paper_museum};
use navsep_core::spec::contextual_spec;
use navsep_core::{separated_sources, weave_separated_cached, WeaveCache};
use navsep_hypermodel::AccessStructureKind;
use navsep_web::{NavigationSession, Site, SiteHandler};
use navsep_xml::Document;

fn main() {
    let store = paper_museum();
    let nav = museum_navigation();
    let spec = contextual_spec(AccessStructureKind::IndexedGuidedTour);
    let sources = separated_sources(&store, &nav, &spec).expect("authoring");
    // Steady-state weave: compiled specs come from (and prime) the cache,
    // so the table reflects reweave cost, not first-compile cost.
    let cache = WeaveCache::new();
    weave_separated_cached(&sources, &cache).expect("warm-up weave");
    let woven = weave_separated_cached(&sources, &cache).expect("weaving");
    assert!(cache.hits() >= 3, "steady-state weave must reuse the cache");

    banner("T3.1 — the same node, two contexts, two different 'Next's");
    let mut rows = Vec::new();
    for (entry, entry_label) in [
        ("picasso.html", "via the author"),
        ("cubism.html", "via the movement"),
    ] {
        let mut session = NavigationSession::new(SiteHandler::new(woven.site.clone()));
        session.visit(entry).expect("entry page");
        session.follow("Guitar").expect("index entry to Guitar");
        let context = session.current_context().unwrap_or("-").to_string();
        // Follow the Next link belonging to the active context.
        let next = session
            .current_page()
            .expect("on guitar page")
            .links
            .iter()
            .find(|l| l.rel.as_deref() == Some("next") && l.context.as_deref() == Some(&context))
            .expect("context-scoped Next link")
            .clone();
        session.follow_link(&next).expect("follow Next");
        rows.push(vec![
            entry_label.to_string(),
            context,
            "guitar.html".to_string(),
            session.current_path().unwrap_or("-").to_string(),
        ]);
    }
    print_table(&["arrival", "active context", "at", "Next leads to"], &rows);
    println!(
        "\n§2: \"if we got the information navigating through the author … we will\n\
         move to the next painting by the same author. However, if we got the\n\
         painting through a pictorial movement, the result … will be different.\""
    );

    banner("T3.2 — scrolling links are not navigation");
    let mut site = Site::new();
    site.put_page(
        "results-1.html",
        Document::parse(
            r#"<html><head><title>Search results</title></head><body>
  <p>Results 1-10 for "picasso"</p>
  <a href="guitar.html" data-context="search:picasso">Guitar</a>
  <a href="results-2.html">More results</a>
</body></html>"#,
        )
        .expect("page"),
    );
    site.put_page(
        "results-2.html",
        Document::parse(
            r#"<html><head><title>Search results 2</title></head><body>
  <p>Results 11-20</p>
</body></html>"#,
        )
        .expect("page"),
    );
    let mut session = NavigationSession::new(SiteHandler::new(site));
    session.visit("results-1.html").expect("visit");
    let before = session.current_context().map(str::to_string);
    session.follow("More results").expect("scroll");
    let after = session.current_context().map(str::to_string);
    print_table(
        &[
            "action",
            "context before",
            "context after",
            "moved info space?",
        ],
        &[vec![
            "follow 'More results'".into(),
            format!("{before:?}"),
            format!("{after:?}"),
            "no — scrolling".into(),
        ]],
    );
    println!(
        "\n§2: \"We do not think that we are navigating when we push on one of\n\
         these specific links … These links are just a way to do scrolling.\""
    );
}
