//! Figure 5 regenerator: the implementation-class diagrams of the Index
//! (5a) and Indexed Guided Tour (5b) access structures, as text and DOT.

use navsep_bench::banner;
use navsep_hypermodel::{class_model_delta, index_class_model, indexed_guided_tour_class_model};

fn main() {
    banner("Figure 5(a) — Index implementation classes");
    print!("{}", index_class_model().to_text());

    banner("Figure 5(b) — Indexed Guided Tour implementation classes");
    print!("{}", indexed_guided_tour_class_model().to_text());

    banner("Delta 5(a) → 5(b)");
    println!(
        "classes added by the requirement change: {:?}",
        class_model_delta()
    );
    println!(
        "\nIn the separated design this delta lives in ONE artifact (links.xml);\n\
         in the tangled design it spreads over every page of the context."
    );

    banner("Graphviz DOT (Fig. 5b)");
    print!("{}", indexed_guided_tour_class_model().to_dot());
}
