//! # navsep-bench — the experiment harness
//!
//! Regenerates **every figure of the paper** and the quantitative tables
//! navsep defines to substantiate its qualitative claims (see `DESIGN.md`
//! §4 and `EXPERIMENTS.md` at the workspace root).
//!
//! Figure regenerators are binaries (`cargo run -p navsep-bench --bin …`):
//!
//! | bin | paper artifact |
//! |-----|----------------|
//! | `fig1_weaver_pipeline` | Fig. 1 — AOP mechanisms |
//! | `fig2_access_structures` | Fig. 2 — Index / Indexed Guided Tour |
//! | `fig3_fig4_tangled_pages` | Figs. 3–4 — the Guitar node, tangled |
//! | `fig5_class_model` | Fig. 5 — implementation classes |
//! | `fig6_weave_equivalence` | Fig. 6 — separation + weaving |
//! | `fig7_9_separated_files` | Figs. 7–9 — `picasso.xml`, `avignon.xml`, `links.xml` |
//! | `t1_change_impact` | Table T1 — cost of the access-structure switch |
//! | `t3_context_navigation` | Table T3 — context-dependent "Next" |
//!
//! Criterion benches (`cargo bench -p navsep-bench`) cover T2 (weaving
//! throughput) and T4 (substrate costs).
//!
//! Beyond the paper's artifacts, `history_workload` drives concurrent
//! navigation sessions through random traversals while a `SitePublisher`
//! reweaves the site, measuring traversal throughput and stale-entry
//! detection (`--smoke` for the CI-sized run).

use navsep_core::museum::{generated_museum, museum_navigation, paper_museum};
use navsep_core::spec::paper_spec;
use navsep_core::{separated_sources, tangled_site, SiteSpec};
use navsep_hypermodel::{AccessStructureKind, InstanceStore, NavigationalSchema};
use navsep_web::Site;

/// A ready-made experimental setup: a museum plus its spec.
#[derive(Debug)]
pub struct Setup {
    /// The instance store.
    pub store: InstanceStore,
    /// The navigational schema.
    pub nav: NavigationalSchema,
    /// The site spec.
    pub spec: SiteSpec,
}

impl Setup {
    /// The paper's exact corpus under the given access structure.
    pub fn paper(access: AccessStructureKind) -> Self {
        Setup {
            store: paper_museum(),
            nav: museum_navigation(),
            spec: paper_spec(access),
        }
    }

    /// A scaled corpus: one painter with `n` paintings (one context of size
    /// `n`, matching the paper's single-context scenario).
    pub fn scaled(n: usize, access: AccessStructureKind) -> Self {
        Setup {
            store: generated_museum(1, n, 2, 0xC0FFEE),
            nav: museum_navigation(),
            spec: paper_spec(access),
        }
    }

    /// A wide corpus: `painters` contexts of `per` members each.
    pub fn wide(painters: usize, per: usize, access: AccessStructureKind) -> Self {
        Setup {
            store: generated_museum(painters, per, 3, 0xC0FFEE),
            nav: museum_navigation(),
            spec: paper_spec(access),
        }
    }

    /// The tangled site for this setup.
    ///
    /// # Panics
    ///
    /// Panics on derivation failure (setups are schema-valid by
    /// construction).
    pub fn tangled(&self) -> Site {
        tangled_site(&self.store, &self.nav, &self.spec).expect("setup is schema-valid")
    }

    /// The separated authoring for this setup.
    ///
    /// # Panics
    ///
    /// Panics on derivation failure.
    pub fn separated(&self) -> Site {
        separated_sources(&self.store, &self.nav, &self.spec).expect("setup is schema-valid")
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_build() {
        let p = Setup::paper(AccessStructureKind::Index);
        assert_eq!(p.tangled().len(), 7);
        let s = Setup::scaled(5, AccessStructureKind::IndexedGuidedTour);
        // 5 paintings + 1 painter + css.
        assert_eq!(s.tangled().len(), 7);
        assert!(s.separated().len() >= 8); // data + links + transform + css
    }

    #[test]
    fn wide_setup_scales_pages() {
        let s = Setup::wide(3, 4, AccessStructureKind::Index);
        // 12 paintings + 3 painters + css.
        assert_eq!(s.tangled().len(), 16);
    }
}
