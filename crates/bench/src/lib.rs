//! # navsep-bench — the experiment harness
//!
//! Regenerates **every figure of the paper** and the quantitative tables
//! navsep defines to substantiate its qualitative claims (see `DESIGN.md`
//! §4 and `EXPERIMENTS.md` at the workspace root).
//!
//! Figure regenerators are binaries (`cargo run -p navsep-bench --bin …`):
//!
//! | bin | paper artifact |
//! |-----|----------------|
//! | `fig1_weaver_pipeline` | Fig. 1 — AOP mechanisms |
//! | `fig2_access_structures` | Fig. 2 — Index / Indexed Guided Tour |
//! | `fig3_fig4_tangled_pages` | Figs. 3–4 — the Guitar node, tangled |
//! | `fig5_class_model` | Fig. 5 — implementation classes |
//! | `fig6_weave_equivalence` | Fig. 6 — separation + weaving |
//! | `fig7_9_separated_files` | Figs. 7–9 — `picasso.xml`, `avignon.xml`, `links.xml` |
//! | `t1_change_impact` | Table T1 — cost of the access-structure switch |
//! | `t3_context_navigation` | Table T3 — context-dependent "Next" |
//!
//! Criterion benches (`cargo bench -p navsep-bench`) cover T2 (weaving
//! throughput) and T4 (substrate costs).
//!
//! Beyond the paper's artifacts, `history_workload` drives concurrent
//! navigation sessions through random traversals while a `SitePublisher`
//! reweaves the site, measuring traversal throughput and stale-entry
//! detection (`--smoke` for the CI-sized run).

use navsep_core::museum::{generated_museum, museum_navigation, paper_museum};
use navsep_core::spec::paper_spec;
use navsep_core::{separated_sources, tangled_site, SiteSpec};
use navsep_hypermodel::{AccessStructureKind, InstanceStore, NavigationalSchema};
use navsep_web::Site;
use navsep_xml::{Document, ElementBuilder};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A ready-made experimental setup: a museum plus its spec.
#[derive(Debug)]
pub struct Setup {
    /// The instance store.
    pub store: InstanceStore,
    /// The navigational schema.
    pub nav: NavigationalSchema,
    /// The site spec.
    pub spec: SiteSpec,
}

impl Setup {
    /// The paper's exact corpus under the given access structure.
    pub fn paper(access: AccessStructureKind) -> Self {
        Setup {
            store: paper_museum(),
            nav: museum_navigation(),
            spec: paper_spec(access),
        }
    }

    /// A scaled corpus: one painter with `n` paintings (one context of size
    /// `n`, matching the paper's single-context scenario).
    pub fn scaled(n: usize, access: AccessStructureKind) -> Self {
        Setup {
            store: generated_museum(1, n, 2, 0xC0FFEE),
            nav: museum_navigation(),
            spec: paper_spec(access),
        }
    }

    /// A wide corpus: `painters` contexts of `per` members each.
    pub fn wide(painters: usize, per: usize, access: AccessStructureKind) -> Self {
        Setup {
            store: generated_museum(painters, per, 3, 0xC0FFEE),
            nav: museum_navigation(),
            spec: paper_spec(access),
        }
    }

    /// The tangled site for this setup.
    ///
    /// # Panics
    ///
    /// Panics on derivation failure (setups are schema-valid by
    /// construction).
    pub fn tangled(&self) -> Site {
        tangled_site(&self.store, &self.nav, &self.spec).expect("setup is schema-valid")
    }

    /// The separated authoring for this setup.
    ///
    /// # Panics
    ///
    /// Panics on derivation failure.
    pub fn separated(&self) -> Site {
        separated_sources(&self.store, &self.nav, &self.spec).expect("setup is schema-valid")
    }
}

/// Whether `NAVSEP_BENCH_FAST=1` is set (CI smoke mode: fewer rounds, same
/// corpus sizes).
pub fn fast_mode() -> bool {
    std::env::var("NAVSEP_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// One giant museum *page*: `rooms` rooms of `paintings_per_room` paintings,
/// each painting carrying four leaf children — `rooms * (1 + 5 *
/// paintings_per_room) + 1` elements. `museum_page(400, 50)` is the ~100k
/// element document the compiled-weave scale benches run on.
///
/// The attribute population is deliberately index-shaped: every element has
/// an `id`, every tenth room is `name="cubism"`, every seventh painting is
/// `class="star"` — so id buckets, name buckets, tag buckets, and unbucketed
/// predicates all have work to do.
pub fn museum_page(rooms: usize, paintings_per_room: usize) -> Document {
    let mut museum = ElementBuilder::new("museum").attr("id", "m0");
    for r in 0..rooms {
        let mut room = ElementBuilder::new("room")
            .attr("id", format!("room-{r}"))
            .attr("name", if r % 10 == 0 { "cubism" } else { "baroque" });
        for p in 0..paintings_per_room {
            let mut painting = ElementBuilder::new("painting").attr("id", format!("p-{r}-{p}"));
            if p % 7 == 0 {
                painting = painting.attr("class", "star");
            }
            room = room.child(
                painting
                    .child(ElementBuilder::new("title").text(format!("Painting {r}.{p}")))
                    .child(ElementBuilder::new("artist").text(format!("Painter {}", r % 23)))
                    .child(ElementBuilder::new("year").text(format!("{}", 1800 + (r + p) % 200)))
                    .child(ElementBuilder::new("medium").text("oil on canvas")),
            );
        }
        museum = museum.child(room);
    }
    museum.build_document()
}

/// Where scale benches record their headline numbers.
pub fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_weave.json")
}

/// Where the traffic fleet records its per-scenario serving numbers.
pub fn traffic_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_traffic.json")
}

/// Records one named section (a JSON object literal) into
/// `BENCH_weave.json`, preserving every other section. The file keeps one
/// section per line so different benches can merge their results without a
/// JSON parser.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn record_bench_section(section: &str, json_object: &str) {
    record_bench_section_in(&bench_json_path(), section, json_object);
}

/// [`record_bench_section`] against an arbitrary merge-file path (e.g.
/// [`traffic_json_path`]) — same one-section-per-line format.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn record_bench_section_in(path: &std::path::Path, section: &str, json_object: &str) {
    let existing = std::fs::read_to_string(path).ok();
    let merged = merge_bench_sections(existing.as_deref(), section, json_object);
    std::fs::write(path, merged).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Pure merge behind [`record_bench_section`]: replaces (or appends) one
/// section of the one-section-per-line JSON document.
pub fn merge_bench_sections(existing: Option<&str>, section: &str, json_object: &str) -> String {
    let mut sections: BTreeMap<String, String> = BTreeMap::new();
    if let Some(text) = existing {
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if line == "{" || line == "}" || line.is_empty() {
                continue;
            }
            if let Some((key, value)) = line.split_once(':') {
                sections.insert(
                    key.trim().trim_matches('"').to_string(),
                    value.trim().to_string(),
                );
            }
        }
    }
    sections.insert(section.to_string(), json_object.trim().to_string());
    let mut out = String::from("{\n");
    let last = sections.len().saturating_sub(1);
    for (i, (key, value)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "  \"{key}\": {value}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push('}');
    out.push('\n');
    out
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_build() {
        let p = Setup::paper(AccessStructureKind::Index);
        assert_eq!(p.tangled().len(), 7);
        let s = Setup::scaled(5, AccessStructureKind::IndexedGuidedTour);
        // 5 paintings + 1 painter + css.
        assert_eq!(s.tangled().len(), 7);
        assert!(s.separated().len() >= 8); // data + links + transform + css
    }

    #[test]
    fn wide_setup_scales_pages() {
        let s = Setup::wide(3, 4, AccessStructureKind::Index);
        // 12 paintings + 3 painters + css.
        assert_eq!(s.tangled().len(), 16);
    }

    #[test]
    fn museum_page_element_count_matches_formula() {
        let doc = museum_page(4, 3);
        assert_eq!(doc.index().element_count(), 4 * (1 + 5 * 3) + 1);
        // The scale corpus really is ~100k elements.
        assert_eq!(400 * (1 + 5 * 50) + 1, 100_401);
    }

    #[test]
    fn bench_sections_merge_and_replace() {
        let first = merge_bench_sections(None, "weave", r#"{"speedup": 7.0}"#);
        assert_eq!(first, "{\n  \"weave\": {\"speedup\": 7.0}\n}\n");
        let second = merge_bench_sections(Some(&first), "xpointer", r#"{"speedup": 9.0}"#);
        assert!(second.contains("\"weave\": {\"speedup\": 7.0},"));
        assert!(second.contains("\"xpointer\": {\"speedup\": 9.0}"));
        let replaced = merge_bench_sections(Some(&second), "weave", r#"{"speedup": 8.5}"#);
        assert!(replaced.contains("\"weave\": {\"speedup\": 8.5},"));
        assert!(replaced.contains("\"xpointer\": {\"speedup\": 9.0}"));
        assert!(!replaced.contains("7.0"));
    }
}
