//! T5: serving throughput — the sharded, epoch-published site store versus
//! the single-`RwLock` baseline, under concurrent readers and under
//! publish churn.
//!
//! The ROADMAP's north star is heavy traffic with cheap reweaves. The
//! numbers here substantiate the two design moves of `navsep-web`'s store:
//! sharding (readers of different pages touch different locks) and epoch
//! publishing (a publish swaps `Arc` pointers instead of write-locking the
//! whole site for the duration of the copy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use navsep_bench::Setup;
use navsep_core::weave_separated;
use navsep_hypermodel::AccessStructureKind;
use navsep_web::{Handler, Request, ShardedSiteHandler, ShardedSiteStore, Site, SiteHandler};
use std::sync::Arc;

const READERS: usize = 4;
const GETS_PER_READER: usize = 256;

fn woven_site(pages: usize) -> Site {
    let setup = Setup::scaled(pages, AccessStructureKind::IndexedGuidedTour);
    weave_separated(&setup.separated()).expect("pipeline").site
}

fn page_paths(site: &Site) -> Vec<String> {
    site.paths().map(str::to_string).collect()
}

/// `READERS` threads each issue `GETS_PER_READER` requests, striped over
/// `paths`; returns the number of successful responses.
fn hammer<H: Handler>(handler: &H, paths: &[String]) -> usize {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..READERS)
            .map(|r| {
                scope.spawn(move || {
                    let mut ok = 0;
                    for i in 0..GETS_PER_READER {
                        let path = &paths[(r + i) % paths.len()];
                        if handler.handle(&Request::get(path)).status().is_success() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

fn bench_concurrent_readers(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_get_concurrent");
    for pages in [16usize, 64] {
        let site = woven_site(pages);
        let paths = page_paths(&site);
        group.throughput(Throughput::Elements((READERS * GETS_PER_READER) as u64));

        let single = SiteHandler::new(site.clone());
        group.bench_with_input(
            BenchmarkId::new("single_lock", pages),
            &paths,
            |b, paths| {
                b.iter(|| {
                    assert_eq!(hammer(&single, paths), READERS * GETS_PER_READER);
                })
            },
        );

        let sharded = ShardedSiteHandler::new(Arc::new(ShardedSiteStore::from_site(16, &site)));
        group.bench_with_input(BenchmarkId::new("sharded", pages), &paths, |b, paths| {
            b.iter(|| {
                assert_eq!(hammer(&sharded, paths), READERS * GETS_PER_READER);
            })
        });
    }
    group.finish();
}

/// Publishes racing the read workload in the during-publish group. Fixed,
/// so both handler variants do identical total work per iteration; read
/// work dominates (as in production), so the group measures reader
/// throughput under churn rather than publish cost (the `publish` group
/// isolates that).
const PUBLISHES: usize = 8;
const CHURN_ROUNDS: usize = 8;

fn bench_readers_under_publish_churn(c: &mut Criterion) {
    // Same read workload, but a writer concurrently republishes the site
    // PUBLISHES times; epoch swaps keep readers off the write path where
    // the single lock stalls every reader for each whole-site replacement.
    let mut group = c.benchmark_group("server_get_during_publish");
    let site = woven_site(32);
    let paths = page_paths(&site);
    group.throughput(Throughput::Elements(
        (CHURN_ROUNDS * READERS * GETS_PER_READER) as u64,
    ));

    let single = Arc::new(SiteHandler::new(site.clone()));
    group.bench_with_input(
        BenchmarkId::new("single_lock", 32usize),
        &paths,
        |b, paths| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    {
                        let single = Arc::clone(&single);
                        let site = site.clone();
                        scope.spawn(move || {
                            for _ in 0..PUBLISHES {
                                single.publish(site.clone());
                            }
                        });
                    }
                    for _ in 0..CHURN_ROUNDS {
                        assert_eq!(hammer(&*single, paths), READERS * GETS_PER_READER);
                    }
                })
            })
        },
    );

    let store = Arc::new(ShardedSiteStore::from_site(16, &site));
    let sharded = ShardedSiteHandler::new(Arc::clone(&store));
    group.bench_with_input(BenchmarkId::new("sharded", 32usize), &paths, |b, paths| {
        b.iter(|| {
            std::thread::scope(|scope| {
                {
                    let store = Arc::clone(&store);
                    let site = site.clone();
                    scope.spawn(move || {
                        for _ in 0..PUBLISHES {
                            store.publish(&site);
                        }
                    });
                }
                for _ in 0..CHURN_ROUNDS {
                    assert_eq!(hammer(&sharded, paths), READERS * GETS_PER_READER);
                }
            })
        })
    });
    group.finish();
}

fn bench_publish_cost(c: &mut Criterion) {
    // The publish itself: single-lock copies under the write lock; the
    // sharded store builds epochs off-lock and swaps pointers.
    let mut group = c.benchmark_group("publish");
    for pages in [16usize, 64] {
        let site = woven_site(pages);
        group.throughput(Throughput::Elements(site.len() as u64));

        let single = SiteHandler::new(site.clone());
        group.bench_with_input(BenchmarkId::new("single_lock", pages), &site, |b, site| {
            b.iter(|| single.publish(site.clone()))
        });

        let store = ShardedSiteStore::from_site(16, &site);
        group.bench_with_input(BenchmarkId::new("sharded", pages), &site, |b, site| {
            b.iter(|| store.publish(site))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_concurrent_readers,
    bench_readers_under_publish_churn,
    bench_publish_cost
);
criterion_main!(benches);
