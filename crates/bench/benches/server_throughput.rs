//! T5: serving throughput — the sharded, epoch-published site store versus
//! the single-`RwLock` baseline, under concurrent readers and under
//! publish churn.
//!
//! The ROADMAP's north star is heavy traffic with cheap reweaves. The
//! numbers here substantiate the two design moves of `navsep-web`'s store:
//! sharding (readers of different pages touch different locks) and epoch
//! publishing (a publish swaps `Arc` pointers instead of write-locking the
//! whole site for the duration of the copy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use navsep_bench::Setup;
use navsep_core::weave_separated;
use navsep_hypermodel::AccessStructureKind;
use navsep_web::{Handler, Request, ShardedSiteHandler, ShardedSiteStore, Site, SiteHandler};
use navsep_xml::Document;
use std::sync::Arc;
use std::time::Instant;

const READERS: usize = 4;
const GETS_PER_READER: usize = 256;

fn woven_site(pages: usize) -> Site {
    let setup = Setup::scaled(pages, AccessStructureKind::IndexedGuidedTour);
    weave_separated(&setup.separated()).expect("pipeline").site
}

fn page_paths(site: &Site) -> Vec<String> {
    site.paths().map(str::to_string).collect()
}

/// `READERS` threads each issue `GETS_PER_READER` requests, striped over
/// `paths`; returns the number of successful responses.
fn hammer<H: Handler>(handler: &H, paths: &[String]) -> usize {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..READERS)
            .map(|r| {
                scope.spawn(move || {
                    let mut ok = 0;
                    for i in 0..GETS_PER_READER {
                        let path = &paths[(r + i) % paths.len()];
                        if handler.handle(&Request::get(path)).status().is_success() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

fn bench_concurrent_readers(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_get_concurrent");
    for pages in [16usize, 64] {
        let site = woven_site(pages);
        let paths = page_paths(&site);
        group.throughput(Throughput::Elements((READERS * GETS_PER_READER) as u64));

        let single = SiteHandler::new(site.clone());
        group.bench_with_input(
            BenchmarkId::new("single_lock", pages),
            &paths,
            |b, paths| {
                b.iter(|| {
                    assert_eq!(hammer(&single, paths), READERS * GETS_PER_READER);
                })
            },
        );

        let sharded = ShardedSiteHandler::new(Arc::new(ShardedSiteStore::from_site(16, &site)));
        group.bench_with_input(BenchmarkId::new("sharded", pages), &paths, |b, paths| {
            b.iter(|| {
                assert_eq!(hammer(&sharded, paths), READERS * GETS_PER_READER);
            })
        });
    }
    group.finish();
}

/// Publishes racing the read workload in the during-publish group. Fixed,
/// so both handler variants do identical total work per iteration; read
/// work dominates (as in production), so the group measures reader
/// throughput under churn rather than publish cost (the `publish` group
/// isolates that).
const PUBLISHES: usize = 8;
const CHURN_ROUNDS: usize = 8;

fn bench_readers_under_publish_churn(c: &mut Criterion) {
    // Same read workload, but a writer concurrently republishes the site
    // PUBLISHES times; epoch swaps keep readers off the write path where
    // the single lock stalls every reader for each whole-site replacement.
    let mut group = c.benchmark_group("server_get_during_publish");
    let site = woven_site(32);
    let paths = page_paths(&site);
    group.throughput(Throughput::Elements(
        (CHURN_ROUNDS * READERS * GETS_PER_READER) as u64,
    ));

    let single = Arc::new(SiteHandler::new(site.clone()));
    group.bench_with_input(
        BenchmarkId::new("single_lock", 32usize),
        &paths,
        |b, paths| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    {
                        let single = Arc::clone(&single);
                        let site = site.clone();
                        scope.spawn(move || {
                            for _ in 0..PUBLISHES {
                                single.publish(site.clone());
                            }
                        });
                    }
                    for _ in 0..CHURN_ROUNDS {
                        assert_eq!(hammer(&*single, paths), READERS * GETS_PER_READER);
                    }
                })
            })
        },
    );

    let store = Arc::new(ShardedSiteStore::from_site(16, &site));
    let sharded = ShardedSiteHandler::new(Arc::clone(&store));
    group.bench_with_input(BenchmarkId::new("sharded", 32usize), &paths, |b, paths| {
        b.iter(|| {
            std::thread::scope(|scope| {
                {
                    let store = Arc::clone(&store);
                    let site = site.clone();
                    scope.spawn(move || {
                        for _ in 0..PUBLISHES {
                            store.publish(&site);
                        }
                    });
                }
                for _ in 0..CHURN_ROUNDS {
                    assert_eq!(hammer(&sharded, paths), READERS * GETS_PER_READER);
                }
            })
        })
    });
    group.finish();
}

fn bench_publish_cost(c: &mut Criterion) {
    // The publish itself: single-lock copies under the write lock; the
    // sharded store builds epochs off-lock and swaps pointers.
    let mut group = c.benchmark_group("publish");
    for pages in [16usize, 64] {
        let site = woven_site(pages);
        group.throughput(Throughput::Elements(site.len() as u64));

        let single = SiteHandler::new(site.clone());
        group.bench_with_input(BenchmarkId::new("single_lock", pages), &site, |b, site| {
            b.iter(|| single.publish(site.clone()))
        });

        let store = ShardedSiteStore::from_site(16, &site);
        group.bench_with_input(BenchmarkId::new("sharded", pages), &site, |b, site| {
            b.iter(|| store.publish(site))
        });
    }
    group.finish();
}

/// Two woven museum sites differing in exactly one page (a 1-page edit),
/// with every document's content hash pre-warmed — the state the
/// publisher's retained weave maintains, so the store diff is O(1) per
/// unchanged page.
fn one_page_edit_pair() -> (Site, Site) {
    let setup = Setup::paper(AccessStructureKind::IndexedGuidedTour);
    let site_a = weave_separated(&setup.separated()).expect("pipeline").site;
    let mut site_b = site_a.clone();
    let edited = site_a
        .get("guitar.html")
        .and_then(navsep_web::Resource::document)
        .expect("museum page")
        .to_xml_string()
        .replace("Guitar", "Guitar (edited)");
    site_b.put_page(
        "guitar.html",
        Document::parse(&edited).expect("edited page"),
    );
    // Warm both variants' memoized hashes (one publish computes them all).
    let warm = ShardedSiteStore::new(16);
    warm.publish_incremental(&site_a);
    warm.publish_incremental(&site_b);
    (site_a, site_b)
}

fn bench_incremental_publish(c: &mut Criterion) {
    // The acceptance scenario for incremental epoch publishing: a 1-page
    // edit on the museum site. `full` re-renders every page into fresh
    // shards; `incremental` diffs against the previous epoch, re-renders
    // the one changed page, and reuses the rest verbatim — O(K), not
    // O(site). Each iteration alternates the two variants so every
    // publish really is a 1-page edit over the live epoch.
    let (site_a, site_b) = one_page_edit_pair();
    let mut group = c.benchmark_group("incremental_publish");
    group.throughput(Throughput::Elements(1));

    let full_store = ShardedSiteStore::from_site(16, &site_a);
    let mut flip = false;
    group.bench_function(BenchmarkId::new("full", "1-page-edit"), |b| {
        b.iter(|| {
            flip = !flip;
            full_store.publish(if flip { &site_b } else { &site_a })
        })
    });

    let inc_store = ShardedSiteStore::from_site(16, &site_a);
    let mut flip = false;
    group.bench_function(BenchmarkId::new("incremental", "1-page-edit"), |b| {
        b.iter(|| {
            flip = !flip;
            inc_store.publish_incremental(if flip { &site_b } else { &site_a })
        })
    });
    group.finish();

    // Headline ratio, measured back to back so it is directly citable.
    const ROUNDS: usize = 400;
    let full = Instant::now();
    let mut flip = false;
    for _ in 0..ROUNDS {
        flip = !flip;
        full_store.publish(if flip { &site_b } else { &site_a });
    }
    let full = full.elapsed();
    let incremental = Instant::now();
    let mut flip = false;
    for _ in 0..ROUNDS {
        flip = !flip;
        inc_store.publish_incremental(if flip { &site_b } else { &site_a });
    }
    let incremental = incremental.elapsed();
    let speedup = full.as_secs_f64() / incremental.as_secs_f64();
    println!(
        "incremental_publish speedup (1-page edit, museum): {speedup:.1}x \
         (full {full:?}, incremental {incremental:?}, {ROUNDS} publishes each)",
    );
    // The acceptance bar (ISSUE 5): a 1-page edit must beat the full
    // publish by >= 3x. Asserted here (and run in CI) so a regression
    // that erodes the reuse path fails loudly instead of going stale in
    // the docs; measured headroom is ~5x, so the margin is real.
    assert!(
        speedup >= 3.0,
        "incremental publish regressed below the 3x acceptance bar: {speedup:.2}x"
    );

    // And the retention guarantee the speedup must not cost: a `back()` to
    // a retained generation returns the byte-identical body it served.
    let store = ShardedSiteStore::from_site(16, &site_a);
    let original = store.get("guitar.html").expect("published").body();
    store.publish_incremental(&site_b);
    let replayed = store.get_at("guitar.html", 1).expect("retained").body();
    assert_eq!(original, replayed, "retained epoch must be byte-identical");
}

criterion_group!(
    benches,
    bench_concurrent_readers,
    bench_readers_under_publish_churn,
    bench_publish_cost,
    bench_incremental_publish
);
criterion_main!(benches);
