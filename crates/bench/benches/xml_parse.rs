//! T4 substrate bench: XML parse and serialize throughput
//! (`navsep-xml`), over documents shaped like navsep's data files and pages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use navsep_bench::Setup;
use navsep_hypermodel::AccessStructureKind;
use navsep_xml::Document;

fn corpus(n: usize) -> Vec<String> {
    let site = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour).tangled();
    site.iter()
        .filter_map(|(_, r)| r.document().map(|d| d.to_xml_string()))
        .collect()
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_parse");
    for n in [10usize, 100] {
        let texts = corpus(n);
        let bytes: usize = texts.iter().map(String::len).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(BenchmarkId::new("pages", n), &texts, |b, texts| {
            b.iter(|| {
                let mut nodes = 0usize;
                for t in texts {
                    let doc = Document::parse(t).expect("corpus is well-formed");
                    nodes += doc.len();
                }
                nodes
            })
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_serialize");
    for n in [10usize, 100] {
        let docs: Vec<Document> = corpus(n)
            .iter()
            .map(|t| Document::parse(t).expect("well-formed"))
            .collect();
        group.bench_with_input(BenchmarkId::new("pages", n), &docs, |b, docs| {
            b.iter(|| docs.iter().map(|d| d.to_xml_string().len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_serialize);
criterion_main!(benches);
