//! Ablation bench: what the aspect machinery itself costs.
//!
//! DESIGN.md calls out three design choices worth costing:
//! 1. number of registered aspects (weaving is a pass per aspect rule);
//! 2. pointcut complexity (simple element test vs boolean expression);
//! 3. static fragments vs per-join-point generated advice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_aspect::{AdvicePosition, Aspect, Pointcut, Weaver};
use navsep_xml::{Document, ElementBuilder};

fn sample_page() -> Document {
    let mut body = ElementBuilder::new("body");
    for i in 0..50 {
        body = body.child(
            ElementBuilder::new("div")
                .attr("class", if i % 2 == 0 { "even card" } else { "odd card" })
                .attr("id", format!("d{i}"))
                .child(ElementBuilder::new("p").text(format!("paragraph {i}"))),
        );
    }
    ElementBuilder::new("html").child(body).build_document()
}

fn simple_aspect(n: usize) -> Aspect {
    Aspect::new(format!("a{n}")).rule(
        Pointcut::parse(r#"element("body")"#).unwrap(),
        AdvicePosition::Append,
        vec![ElementBuilder::new("footer").text(format!("aspect {n}"))],
    )
}

fn bench_aspect_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_by_aspect_count");
    let page = sample_page();
    for n in [1usize, 4, 16] {
        let mut weaver = Weaver::new();
        for i in 0..n {
            weaver.add_aspect(simple_aspect(i));
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &weaver, |b, weaver| {
            b.iter(|| weaver.weave_page("p.html", &page).unwrap().1.applications())
        });
    }
    group.finish();
}

fn bench_pointcut_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_by_pointcut_complexity");
    let page = sample_page();
    let cases = [
        ("element", r#"element("p")"#),
        ("class", r#"class("card")"#),
        (
            "boolean",
            r#"element("div") && class("even") && !attr("data-skip") && (id("d0") || class("card"))"#,
        ),
        ("page_glob", r#"element("div") && page("p*.html")"#),
    ];
    for (name, expr) in cases {
        let weaver = Weaver::new().aspect(Aspect::new("x").text_rule(
            Pointcut::parse(expr).unwrap(),
            AdvicePosition::Append,
            "!",
        ));
        group.bench_with_input(BenchmarkId::from_parameter(name), &weaver, |b, weaver| {
            b.iter(|| weaver.weave_page("p.html", &page).unwrap().1.applications())
        });
    }
    group.finish();
}

fn bench_static_vs_generated(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_static_vs_generated");
    let page = sample_page();
    let static_weaver = Weaver::new().aspect(Aspect::new("s").rule(
        Pointcut::parse(r#"element("div")"#).unwrap(),
        AdvicePosition::Append,
        vec![ElementBuilder::new("span").text("static")],
    ));
    group.bench_function("static_fragment", |b| {
        b.iter(|| {
            static_weaver
                .weave_page("p.html", &page)
                .unwrap()
                .1
                .applications()
        })
    });
    let generated_weaver = Weaver::new().aspect(Aspect::new("g").generated_rule(
        Pointcut::parse(r#"element("div")"#).unwrap(),
        AdvicePosition::Append,
        |jp| vec![ElementBuilder::new("span").text(jp.element_path())],
    ));
    group.bench_function("generated_per_joinpoint", |b| {
        b.iter(|| {
            generated_weaver
                .weave_page("p.html", &page)
                .unwrap()
                .1
                .applications()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aspect_count,
    bench_pointcut_complexity,
    bench_static_vs_generated
);
criterion_main!(benches);
