//! Ablation bench: what the aspect machinery itself costs.
//!
//! DESIGN.md calls out three design choices worth costing:
//! 1. number of registered aspects (weaving is a pass per aspect rule);
//! 2. pointcut complexity (simple element test vs boolean expression);
//! 3. static fragments vs per-join-point generated advice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_aspect::{AdvicePosition, Aspect, Pointcut, Weaver};
use navsep_bench::{fast_mode, museum_page, record_bench_section};
use navsep_xml::{Document, ElementBuilder};
use std::time::Instant;

fn sample_page() -> Document {
    let mut body = ElementBuilder::new("body");
    for i in 0..50 {
        body = body.child(
            ElementBuilder::new("div")
                .attr("class", if i % 2 == 0 { "even card" } else { "odd card" })
                .attr("id", format!("d{i}"))
                .child(ElementBuilder::new("p").text(format!("paragraph {i}"))),
        );
    }
    ElementBuilder::new("html").child(body).build_document()
}

fn simple_aspect(n: usize) -> Aspect {
    Aspect::new(format!("a{n}")).rule(
        Pointcut::parse(r#"element("body")"#).unwrap(),
        AdvicePosition::Append,
        vec![ElementBuilder::new("footer").text(format!("aspect {n}"))],
    )
}

fn bench_aspect_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_by_aspect_count");
    let page = sample_page();
    for n in [1usize, 4, 16] {
        let mut weaver = Weaver::new();
        for i in 0..n {
            weaver.add_aspect(simple_aspect(i));
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &weaver, |b, weaver| {
            b.iter(|| weaver.weave_page("p.html", &page).unwrap().1.applications())
        });
    }
    group.finish();
}

fn bench_pointcut_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_by_pointcut_complexity");
    let page = sample_page();
    let cases = [
        ("element", r#"element("p")"#),
        ("class", r#"class("card")"#),
        (
            "boolean",
            r#"element("div") && class("even") && !attr("data-skip") && (id("d0") || class("card"))"#,
        ),
        ("page_glob", r#"element("div") && page("p*.html")"#),
    ];
    for (name, expr) in cases {
        let weaver = Weaver::new().aspect(Aspect::new("x").text_rule(
            Pointcut::parse(expr).unwrap(),
            AdvicePosition::Append,
            "!",
        ));
        group.bench_with_input(BenchmarkId::from_parameter(name), &weaver, |b, weaver| {
            b.iter(|| weaver.weave_page("p.html", &page).unwrap().1.applications())
        });
    }
    group.finish();
}

fn bench_static_vs_generated(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_static_vs_generated");
    let page = sample_page();
    let static_weaver = Weaver::new().aspect(Aspect::new("s").rule(
        Pointcut::parse(r#"element("div")"#).unwrap(),
        AdvicePosition::Append,
        vec![ElementBuilder::new("span").text("static")],
    ));
    group.bench_function("static_fragment", |b| {
        b.iter(|| {
            static_weaver
                .weave_page("p.html", &page)
                .unwrap()
                .1
                .applications()
        })
    });
    let generated_weaver = Weaver::new().aspect(Aspect::new("g").generated_rule(
        Pointcut::parse(r#"element("div")"#).unwrap(),
        AdvicePosition::Append,
        |jp| vec![ElementBuilder::new("span").text(jp.element_path())],
    ));
    group.bench_function("generated_per_joinpoint", |b| {
        b.iter(|| {
            generated_weaver
                .weave_page("p.html", &page)
                .unwrap()
                .1
                .applications()
        })
    });
    group.finish();
}

/// The mixed rule set the scale bench weaves: 48 rules across 5 aspects,
/// shaped like a real site's concern stack — id-targeted navigation
/// anchors, tag∩attr badge rules, page-gated rules that are empty on the
/// bench page, name-bucket audit rules, and rules on tags the page does not
/// contain. Every rule is index-narrowable, so the compiled weaver touches
/// O(matches) join points where the naive weaver scans all ~100k elements
/// per rule.
fn scale_weaver(rooms: usize) -> Weaver {
    let mut nav = Aspect::new("nav");
    for k in 0..8usize {
        nav = nav.rule(
            Pointcut::parse(&format!(r#"id("p-{}-17")"#, (k * 37) % rooms)).unwrap(),
            AdvicePosition::After,
            vec![ElementBuilder::new("a").attr("href", format!("next-{k}.html"))],
        );
    }
    let mut badges = Aspect::new("badges").with_precedence(1);
    for k in 0..8usize {
        badges = badges.rule(
            Pointcut::parse(&format!(
                r#"element("painting") && attr("id", "p-{}-14")"#,
                (k * 53) % rooms
            ))
            .unwrap(),
            AdvicePosition::Prepend,
            vec![ElementBuilder::new("badge")],
        );
    }
    let mut gated = Aspect::new("gated").with_precedence(2);
    for k in 0..16usize {
        gated = gated.text_rule(
            Pointcut::parse(&format!(r#"page("painter-{k}-*") && element("room")"#)).unwrap(),
            AdvicePosition::Append,
            "gated",
        );
    }
    let mut audit = Aspect::new("audit").with_precedence(3);
    for _ in 0..8usize {
        audit = audit.text_rule(
            Pointcut::parse(r#"attr("name", "cubism") && element("room")"#).unwrap(),
            AdvicePosition::Append,
            "audited",
        );
    }
    let mut rare = Aspect::new("rare").with_precedence(4);
    for _ in 0..8usize {
        rare = rare.rule(
            Pointcut::parse(r#"element("curator-note")"#).unwrap(),
            AdvicePosition::Before,
            vec![ElementBuilder::new("hr")],
        );
    }
    Weaver::new()
        .aspect(nav)
        .aspect(badges)
        .aspect(gated)
        .aspect(audit)
        .aspect(rare)
}

/// The acceptance scenario for compiled pointcuts (ISSUE 6): on a
/// ~100k-element museum page with 48 index-narrowable rules, the compiled
/// weave must beat the naive element × rule cross-product by >= 5x, while
/// producing byte-identical output. The headline numbers are recorded in
/// `BENCH_weave.json`.
fn bench_compiled_weave_scale(c: &mut Criterion) {
    const ROOMS: usize = 400;
    const PER_ROOM: usize = 50;
    let page = museum_page(ROOMS, PER_ROOM);
    let elements = page.index().element_count();
    let nodes = page.descendants(page.document_node()).count();
    let weaver = scale_weaver(ROOMS);
    let rules: usize = weaver.aspects().iter().map(|a| a.rules().len()).sum();
    let compiled = weaver.compile();
    assert_eq!(compiled.narrowed_rules(), rules, "every scale rule narrows");

    // Correctness first: identical bytes, identical reports (this also
    // warms the page's document index and memoized hash).
    let (naive_doc, naive_rep) = weaver.weave_page_naive("p.html", &page).unwrap();
    let (fast_doc, fast_rep) = compiled.weave_page("p.html", &page).unwrap();
    assert_eq!(naive_doc.to_xml_string(), fast_doc.to_xml_string());
    assert_eq!(naive_rep.events, fast_rep.events);
    assert!(
        naive_rep.applications() > 0,
        "the scenario must apply advice"
    );

    let mut group = c.benchmark_group("weave_scale_100k");
    group.bench_function(BenchmarkId::new("naive", elements), |b| {
        b.iter(|| {
            weaver
                .weave_page_naive("p.html", &page)
                .unwrap()
                .1
                .applications()
        })
    });
    group.bench_function(BenchmarkId::new("compiled", elements), |b| {
        b.iter(|| {
            compiled
                .weave_page("p.html", &page)
                .unwrap()
                .1
                .applications()
        })
    });
    group.finish();

    // Headline ratio, measured back to back so it is directly citable.
    let naive_rounds = if fast_mode() { 2 } else { 5 };
    let compiled_rounds = if fast_mode() { 40 } else { 100 };
    let t = Instant::now();
    for _ in 0..naive_rounds {
        weaver.weave_page_naive("p.html", &page).unwrap();
    }
    let naive_per = t.elapsed().as_secs_f64() / naive_rounds as f64;
    let t = Instant::now();
    for _ in 0..compiled_rounds {
        compiled.weave_page("p.html", &page).unwrap();
    }
    let compiled_per = t.elapsed().as_secs_f64() / compiled_rounds as f64;
    let speedup = naive_per / compiled_per;
    println!(
        "compiled weave speedup ({elements} elements, {rules} rules): {speedup:.1}x \
         (naive {:.1}ms, compiled {:.2}ms per weave)",
        naive_per * 1e3,
        compiled_per * 1e3,
    );
    record_bench_section(
        "weave_100k",
        &format!(
            "{{\"nodes\": {nodes}, \"elements\": {elements}, \"rules\": {rules}, \
             \"naive_ms_per_weave\": {:.3}, \"compiled_ms_per_weave\": {:.3}, \
             \"speedup\": {:.1}, \"fast_mode\": {}}}",
            naive_per * 1e3,
            compiled_per * 1e3,
            speedup,
            fast_mode(),
        ),
    );
    // The acceptance bar (ISSUE 6): compiled weaving must beat the naive
    // cross-product by >= 5x at 100k nodes. Asserted here (and run in CI)
    // so a regression fails loudly instead of going stale in the docs.
    assert!(
        speedup >= 5.0,
        "compiled weave regressed below the 5x acceptance bar: {speedup:.2}x"
    );
}

criterion_group!(
    benches,
    bench_aspect_count,
    bench_pointcut_complexity,
    bench_static_vs_generated,
    bench_compiled_weave_scale
);
criterion_main!(benches);
