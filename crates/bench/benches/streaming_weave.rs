//! Streaming weave throughput: the ISSUE 7 acceptance bench.
//!
//! A ~1k-page museum site is woven twice — through the sequential DOM
//! pipeline and through the streaming worker-pool pipeline at 1, 2, and 8
//! workers. The bench asserts the equivalence law at full scale (every
//! served body byte-identical to the DOM path, across every worker count)
//! before it measures anything, then records throughput and the 1→8 worker
//! scaling ratio in `BENCH_weave.json`.
//!
//! The ≥3x scaling bar is only meaningful on a machine that can actually
//! run 8 workers in parallel, so the assertion is gated on
//! `available_parallelism() >= 8`; the measured ratio and the core count
//! are recorded honestly either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_bench::{fast_mode, record_bench_section, Setup};
use navsep_core::{
    weave_separated, weave_separated_cached, weave_separated_streaming,
    weave_separated_streaming_cached, WeaveCache,
};
use navsep_hypermodel::AccessStructureKind;
use navsep_web::Site;
use std::time::Instant;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// 40 painters × 24 paintings → 1000 pages (+ stylesheet) once woven.
fn thousand_page_sources() -> Site {
    Setup::wide(40, 24, AccessStructureKind::IndexedGuidedTour).separated()
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The CI-asserted law at acceptance scale: streaming full-weave of the
/// 1k-page site is byte-identical to the DOM path at every worker count.
fn assert_byte_identical(sources: &Site) -> usize {
    let seq = weave_separated(sources).expect("sequential weave");
    for workers in WORKER_COUNTS {
        let streamed = weave_separated_streaming(sources, workers).expect("streaming weave");
        assert_eq!(streamed.site.len(), seq.site.len());
        assert_eq!(
            streamed.pages_fallback, 0,
            "the paper spec is fully streamable"
        );
        assert_eq!(streamed.pages_streamed, seq.reports.len());
        for (path, res) in seq.site.iter() {
            let got = streamed.site.get(path).expect("streaming kept every path");
            assert_eq!(got.media_type(), res.media_type());
            assert_eq!(
                got.to_bytes(),
                res.to_bytes(),
                "served bytes differ at {path} with {workers} workers"
            );
        }
    }
    seq.reports.len()
}

fn bench_streaming_weave(c: &mut Criterion) {
    let sources = thousand_page_sources();
    let pages = assert_byte_identical(&sources);
    assert!(pages >= 1000, "acceptance corpus must be >= 1k pages");

    // Steady state: transform, linkbase, navigation map, and compiled
    // weaver are cached, so the loop measures transform-apply + weave —
    // the work the worker pool actually parallelizes.
    let cache = WeaveCache::new();
    weave_separated_streaming_cached(&sources, &cache, 1).expect("warm-up");

    let mut group = c.benchmark_group("streaming_weave_1k");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("dom_sequential", pages), |b| {
        b.iter(|| {
            weave_separated_cached(&sources, &cache)
                .expect("weave")
                .site
                .len()
        })
    });
    for workers in WORKER_COUNTS {
        group.bench_function(BenchmarkId::new("streaming_workers", workers), |b| {
            b.iter(|| {
                weave_separated_streaming_cached(&sources, &cache, workers)
                    .expect("weave")
                    .site
                    .len()
            })
        });
    }
    group.finish();

    // Headline numbers, measured back to back so the ratio is citable.
    let rounds = if fast_mode() { 2 } else { 5 };
    let time_per = |f: &dyn Fn()| {
        let t = Instant::now();
        for _ in 0..rounds {
            f();
        }
        t.elapsed().as_secs_f64() / f64::from(rounds)
    };
    let seq_per = time_per(&|| {
        weave_separated_cached(&sources, &cache).expect("weave");
    });
    let worker_per: Vec<f64> = WORKER_COUNTS
        .iter()
        .map(|&w| {
            time_per(&|| {
                weave_separated_streaming_cached(&sources, &cache, w).expect("weave");
            })
        })
        .collect();
    let scaling = worker_per[0] / worker_per[2];
    let cores = available_cores();
    println!(
        "streaming weave ({pages} pages, {cores} cores): dom {:.1}ms, \
         1w {:.1}ms, 2w {:.1}ms, 8w {:.1}ms, 1→8 scaling {scaling:.2}x",
        seq_per * 1e3,
        worker_per[0] * 1e3,
        worker_per[1] * 1e3,
        worker_per[2] * 1e3,
    );
    // The ≥3x bar needs 8 hardware threads to be physically possible.
    let scaling_asserted = cores >= 8;
    if scaling_asserted {
        assert!(
            scaling >= 3.0,
            "streaming weave scaling regressed below the 3x bar on \
             {cores} cores: {scaling:.2}x"
        );
    } else {
        println!(
            "scaling bar not asserted: {cores} core(s) < 8 \
             (byte-identity was asserted above)"
        );
    }
    record_bench_section(
        "streaming_weave",
        &format!(
            "{{\"pages\": {pages}, \"cores\": {cores}, \
             \"dom_ms_per_weave\": {:.3}, \"w1_ms_per_weave\": {:.3}, \
             \"w2_ms_per_weave\": {:.3}, \"w8_ms_per_weave\": {:.3}, \
             \"scaling_1_to_8\": {scaling:.2}, \
             \"scaling_asserted\": {scaling_asserted}, \"fast_mode\": {}}}",
            seq_per * 1e3,
            worker_per[0] * 1e3,
            worker_per[1] * 1e3,
            worker_per[2] * 1e3,
            fast_mode(),
        ),
    );
}

criterion_group!(benches, bench_streaming_weave);
criterion_main!(benches);
