//! Overload behavior of the hardened [`ServerPool`]: shed rate and served
//! latency under a client load the pool cannot absorb, versus the same
//! pool under capacity.
//!
//! The robustness contract (ISSUE 8) is that overload is *explicit*: the
//! bounded queue sheds with 503 + `x-navsep-retry-after` instead of
//! letting latency grow without bound. The numbers recorded here — shed
//! rate and p50/p99 of the requests that were served — substantiate that
//! the served requests stay fast precisely because the excess was shed.
//!
//! Results land in the `server_overload` section of `BENCH_weave.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use navsep_bench::{fast_mode, record_bench_section, Setup};
use navsep_core::weave_separated;
use navsep_hypermodel::AccessStructureKind;
use navsep_web::{
    Handler, PoolConfig, Request, Response, ServerPool, ShardedSiteHandler, ShardedSiteStore,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The store handler with a fixed per-request work floor, standing in for
/// handlers that do real work (weave-on-miss, templating) — overload is
/// only meaningful when requests cost something.
struct WorkingHandler {
    inner: ShardedSiteHandler,
    work: Duration,
}

impl Handler for WorkingHandler {
    fn handle(&self, request: &Request) -> Response {
        std::thread::sleep(self.work);
        self.inner.handle(request)
    }
}

fn served_paths() -> (Arc<ShardedSiteStore>, Vec<String>) {
    let setup = Setup::paper(AccessStructureKind::Index);
    let site = weave_separated(&setup.separated()).expect("pipeline").site;
    let store = Arc::new(ShardedSiteStore::from_site(8, &site));
    let paths = site.paths().map(str::to_string).collect();
    (store, paths)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

struct LoadResult {
    requests: usize,
    shed: usize,
    p50: Duration,
    p99: Duration,
}

impl LoadResult {
    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.requests as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
             \"served_p50_us\": {}, \"served_p99_us\": {}}}",
            self.requests,
            self.shed,
            self.shed_rate(),
            self.p50.as_micros(),
            self.p99.as_micros(),
        )
    }
}

/// `clients` threads each fire `per_client` non-blocking requests in
/// pipelined bursts of `burst` (all sent before any reply is awaited —
/// `burst = 1` is a closed loop, larger bursts model clients that do not
/// wait); returns shed count and the latency distribution of the
/// **served** responses (shed responses return ~instantly by design).
fn drive(
    pool: &ServerPool,
    paths: &[String],
    clients: usize,
    per_client: usize,
    burst: usize,
) -> LoadResult {
    let outcomes: Vec<(bool, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(per_client);
                    for chunk in 0..per_client.div_ceil(burst) {
                        let sent: Vec<_> = (0..burst.min(per_client - chunk * burst))
                            .map(|i| {
                                let path = &paths[(c + chunk * burst + i) % paths.len()];
                                (Instant::now(), pool.request(Request::get(path.clone())))
                            })
                            .collect();
                        for (start, reply) in sent {
                            let response = reply.recv().expect("pool always answers");
                            out.push((response.status().is_success(), start.elapsed()));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let requests = outcomes.len();
    let shed = outcomes.iter().filter(|(ok, _)| !ok).count();
    let mut served: Vec<Duration> = outcomes
        .iter()
        .filter(|(ok, _)| *ok)
        .map(|(_, d)| *d)
        .collect();
    served.sort_unstable();
    LoadResult {
        requests,
        shed,
        p50: percentile(&served, 50.0),
        p99: percentile(&served, 99.0),
    }
}

fn bench_pool_request_latency(c: &mut Criterion) {
    // The per-request floor through the pool machinery itself (channel
    // hop, worker dispatch, reply channel) with an instant handler.
    let (store, paths) = served_paths();
    let pool = ServerPool::start(Arc::new(ShardedSiteHandler::new(store)), 2);
    let mut group = c.benchmark_group("server_pool");
    group.bench_function("request_roundtrip", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let response = pool.request_sync(Request::get(paths[i % paths.len()].clone()));
            assert!(response.status().is_success());
        })
    });
    group.finish();
    pool.shutdown();
}

fn measure_overload() {
    let per_client = if fast_mode() { 40 } else { 160 };
    let work = Duration::from_micros(300);

    // Under capacity: more workers than clients, a deep queue — nothing
    // sheds, latency ≈ work + dispatch.
    let (store, paths) = served_paths();
    let pool = ServerPool::start_with(
        Arc::new(WorkingHandler {
            inner: ShardedSiteHandler::new(Arc::clone(&store)),
            work,
        }),
        PoolConfig::new(4).queue_capacity(256),
    );
    let under = drive(&pool, &paths, 2, per_client, 1);
    pool.shutdown();
    assert_eq!(under.shed, 0, "under-capacity run must not shed");

    // Overload: twice the clients onto half the workers over a 4-deep
    // queue. The excess must shed (bounded queue), and the requests that
    // ARE served must stay near the under-capacity latency — that is the
    // whole point of shedding.
    let pool = ServerPool::start_with(
        Arc::new(WorkingHandler {
            inner: ShardedSiteHandler::new(store),
            work,
        }),
        PoolConfig::new(2)
            .queue_capacity(4)
            .retry_after(Duration::from_millis(5)),
    );
    let over = drive(&pool, &paths, 4, per_client, 16);
    let shed_recorded = pool.requests_shed();
    pool.shutdown();
    assert!(over.shed > 0, "overload run must shed");
    assert_eq!(over.shed as u64, shed_recorded, "pool stats agree");

    println!(
        "server_overload: under-capacity p50 {:?} p99 {:?} shed {}/{} | \
         overload p50 {:?} p99 {:?} shed {}/{} ({:.1}%)",
        under.p50,
        under.p99,
        under.shed,
        under.requests,
        over.p50,
        over.p99,
        over.shed,
        over.requests,
        over.shed_rate() * 100.0,
    );
    record_bench_section(
        "server_overload",
        &format!(
            "{{\"work_floor_us\": {}, \"under_capacity\": {}, \"overload\": {}, \
             \"fast_mode\": {}}}",
            work.as_micros(),
            under.json(),
            over.json(),
            fast_mode(),
        ),
    );
}

fn bench_overload(_c: &mut Criterion) {
    // One-shot measurement (not a criterion loop: the scenario is
    // stateful and minutes-long if iterated); recorded into
    // BENCH_weave.json like the other headline numbers.
    measure_overload();
}

criterion_group!(benches, bench_pool_request_latency, bench_overload);
criterion_main!(benches);
