//! T1 (bench form): computing the change-impact of the access-structure
//! switch, and the underlying Myers diff, as the context grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_bench::Setup;
use navsep_core::{diff_lines, ImpactReport};
use navsep_hypermodel::AccessStructureKind;
use std::collections::BTreeMap;

fn file_maps(n: usize) -> (BTreeMap<String, String>, BTreeMap<String, String>) {
    let before = Setup::scaled(n, AccessStructureKind::Index).tangled();
    let after = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour).tangled();
    (before.to_file_map(), after.to_file_map())
}

fn bench_impact_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("change_impact_tangled");
    for n in [10usize, 100] {
        let (before, after) = file_maps(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&before, &after),
            |b, (before, after)| b.iter(|| ImpactReport::between(before, after).files_touched),
        );
    }
    group.finish();
}

fn bench_impact_separated(c: &mut Criterion) {
    let mut group = c.benchmark_group("change_impact_separated");
    for n in [10usize, 100] {
        let before = Setup::scaled(n, AccessStructureKind::Index)
            .separated()
            .to_file_map();
        let after = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour)
            .separated()
            .to_file_map();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&before, &after),
            |b, (before, after)| b.iter(|| ImpactReport::between(before, after).files_touched),
        );
    }
    group.finish();
}

fn bench_myers_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("myers_diff_lines");
    for n in [100usize, 1000] {
        // Texts with a sprinkling of differences, like re-woven pages.
        let a: String = (0..n).map(|i| format!("line {i}\n")).collect();
        let b: String = (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    format!("changed {i}\n")
                } else {
                    format!("line {i}\n")
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| diff_lines(a, b).total())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_impact_report,
    bench_impact_separated,
    bench_myers_diff
);
criterion_main!(benches);
