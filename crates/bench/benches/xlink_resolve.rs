//! T4 substrate bench: linkbase loading, arc expansion, and cross-document
//! resolution (`navsep-xlink`) as the context grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_bench::Setup;
use navsep_hypermodel::AccessStructureKind;
use navsep_web::Site;
use navsep_xlink::{Linkbase, Resolver};

fn sources(n: usize) -> Site {
    Setup::scaled(n, AccessStructureKind::IndexedGuidedTour).separated()
}

fn bench_linkbase_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("xlink_linkbase_load");
    for n in [10usize, 100, 300] {
        let site = sources(n);
        let doc = site.get("links.xml").unwrap().document().unwrap().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, doc| {
            b.iter(|| {
                Linkbase::from_document(doc, "links.xml")
                    .expect("generated linkbase is valid")
                    .extended_links()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_arc_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("xlink_arc_expansion");
    for n in [10usize, 100, 300] {
        let site = sources(n);
        let doc = site.get("links.xml").unwrap().document().unwrap();
        let lb = Linkbase::from_document(doc, "links.xml").expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(n), &lb, |b, lb| {
            b.iter(|| lb.traversals().expect("arcs expand").len())
        });
    }
    group.finish();
}

fn bench_full_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("xlink_resolve_endpoints");
    for n in [10usize, 100] {
        let site = sources(n);
        let doc = site.get("links.xml").unwrap().document().unwrap();
        let lb = Linkbase::from_document(doc, "links.xml").expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&site, &lb),
            |b, (site, lb)| {
                b.iter(|| {
                    Resolver::new(*site, "links.xml")
                        .resolve(lb)
                        .expect("all endpoints resolve")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linkbase_load,
    bench_arc_expansion,
    bench_full_resolution
);
criterion_main!(benches);
