//! T2: the cost of the separation — full-pipeline weaving throughput versus
//! the tangled generator, as the site grows.
//!
//! The paper delegates composition to "the AOP mechanisms" without costing
//! it; this bench supplies the missing numbers. Expected shape: weaving is
//! a constant factor over tangled generation (it re-does the same page
//! construction plus transform + linkbase work), scaling linearly in pages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use navsep_bench::Setup;
use navsep_core::{tangled_site, weave_separated, weave_separated_cached, WeaveCache};
use navsep_hypermodel::AccessStructureKind;

fn bench_weave_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave_pipeline");
    for n in [10usize, 50, 200] {
        let setup = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour);
        let sources = setup.separated();
        group.throughput(Throughput::Elements(n as u64 + 1)); // pages woven
        group.bench_with_input(BenchmarkId::new("pages", n), &sources, |b, sources| {
            b.iter(|| weave_separated(sources).expect("pipeline").site.len())
        });
    }
    group.finish();
}

fn bench_weave_pipeline_cached(c: &mut Criterion) {
    // Steady state: transform, linkbase, navigation map, and aspects are
    // compiled once (outside the measurement) and reused, so the loop
    // measures transform-apply + weave only — the reweave cost the paper's
    // "change only links.xml" story actually pays.
    let mut group = c.benchmark_group("weave_pipeline_cached");
    for n in [10usize, 50, 200] {
        let setup = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour);
        let sources = setup.separated();
        let cache = WeaveCache::new();
        weave_separated_cached(&sources, &cache).expect("warm-up weave");
        group.throughput(Throughput::Elements(n as u64 + 1));
        group.bench_with_input(BenchmarkId::new("pages", n), &sources, |b, sources| {
            b.iter(|| {
                weave_separated_cached(sources, &cache)
                    .expect("pipeline")
                    .site
                    .len()
            })
        });
        // Transform, linkbase, navigation map, and the compiled weaver each
        // miss exactly once (the warm-up); the loop itself never recompiles.
        assert_eq!(cache.misses(), 4, "steady state must not recompile");
    }
    group.finish();
}

fn bench_tangled_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("tangled_generation");
    for n in [10usize, 50, 200] {
        let setup = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour);
        group.throughput(Throughput::Elements(n as u64 + 1));
        group.bench_with_input(BenchmarkId::new("pages", n), &setup, |b, setup| {
            b.iter(|| {
                tangled_site(&setup.store, &setup.nav, &setup.spec)
                    .expect("tangled")
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_authoring_generation(c: &mut Criterion) {
    // Producing the separated sources themselves (data + links.xml).
    let mut group = c.benchmark_group("separated_authoring");
    for n in [10usize, 50, 200] {
        let setup = Setup::scaled(n, AccessStructureKind::IndexedGuidedTour);
        group.bench_with_input(BenchmarkId::new("pages", n), &setup, |b, setup| {
            b.iter(|| setup.separated().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weave_pipeline,
    bench_weave_pipeline_cached,
    bench_tangled_baseline,
    bench_authoring_generation
);
criterion_main!(benches);
