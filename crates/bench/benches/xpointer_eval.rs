//! T4 substrate bench: XPointer evaluation cost for the three pointer forms
//! the linkbases use (shorthand ID, `element()`, `xpointer()` paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_xml::{Document, ElementBuilder};
use navsep_xpointer::{evaluate, parse};

/// A painter document with `n` paintings.
fn painter_doc(n: usize) -> Document {
    let mut painter = ElementBuilder::new("painter").attr("id", "p0");
    for i in 0..n {
        painter = painter.child(
            ElementBuilder::new("painting")
                .attr("id", format!("painting-{i}"))
                .attr("title", format!("Painting {i}"))
                .attr("year", format!("{}", 1880 + i % 60)),
        );
    }
    painter.build_document()
}

fn bench_pointers(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpointer_eval");
    for n in [10usize, 100, 1000] {
        let doc = painter_doc(n);
        let mid = n / 2;
        let pointers = [
            ("shorthand", format!("painting-{mid}")),
            ("element_scheme", format!("element(/1/{})", mid + 1)),
            (
                "xpointer_attr",
                format!("xpointer(//painting[@id='painting-{mid}'])"),
            ),
            (
                "xpointer_pos",
                format!("xpointer(/painter/painting[{}])", mid + 1),
            ),
        ];
        for (name, text) in &pointers {
            let parsed = parse(text).expect("pointer parses");
            group.bench_with_input(
                BenchmarkId::new(*name, n),
                &(&doc, &parsed),
                |b, (doc, ptr)| b.iter(|| evaluate(doc, ptr).expect("pointer resolves").len()),
            );
        }
    }
    group.finish();
}

fn bench_parse_only(c: &mut Criterion) {
    c.bench_function("xpointer_parse", |b| {
        b.iter(|| {
            parse("xpointer(/museum/painter[2]/painting[@id='guitar']/@title)").expect("parses")
        })
    });
}

criterion_group!(benches, bench_pointers, bench_parse_only);
criterion_main!(benches);
