//! T4 substrate bench: XPointer evaluation cost for the three pointer forms
//! the linkbases use (shorthand ID, `element()`, `xpointer()` paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navsep_bench::{fast_mode, museum_page, record_bench_section};
use navsep_xml::{Document, ElementBuilder};
use navsep_xpointer::{evaluate, parse, CompiledPointer};
use std::time::Instant;

/// A painter document with `n` paintings.
fn painter_doc(n: usize) -> Document {
    let mut painter = ElementBuilder::new("painter").attr("id", "p0");
    for i in 0..n {
        painter = painter.child(
            ElementBuilder::new("painting")
                .attr("id", format!("painting-{i}"))
                .attr("title", format!("Painting {i}"))
                .attr("year", format!("{}", 1880 + i % 60)),
        );
    }
    painter.build_document()
}

fn bench_pointers(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpointer_eval");
    for n in [10usize, 100, 1000] {
        let doc = painter_doc(n);
        let mid = n / 2;
        let pointers = [
            ("shorthand", format!("painting-{mid}")),
            ("element_scheme", format!("element(/1/{})", mid + 1)),
            (
                "xpointer_attr",
                format!("xpointer(//painting[@id='painting-{mid}'])"),
            ),
            (
                "xpointer_pos",
                format!("xpointer(/painter/painting[{}])", mid + 1),
            ),
        ];
        for (name, text) in &pointers {
            let parsed = parse(text).expect("pointer parses");
            group.bench_with_input(
                BenchmarkId::new(*name, n),
                &(&doc, &parsed),
                |b, (doc, ptr)| b.iter(|| evaluate(doc, ptr).expect("pointer resolves").len()),
            );
        }
    }
    group.finish();
}

fn bench_parse_only(c: &mut Criterion) {
    c.bench_function("xpointer_parse", |b| {
        b.iter(|| {
            parse("xpointer(/museum/painter[2]/painting[@id='guitar']/@title)").expect("parses")
        })
    });
}

/// The acceptance scenario for compiled pointers (ISSUE 6): on the same
/// ~100k-element museum page the weave bench uses, index-narrowed descendant
/// forms (`//painting[@id=..]`, `//room[@name=..]`) must beat the
/// interpreter's full-document walk by >= 5x while returning identical
/// locations. The headline numbers land in `BENCH_weave.json` next to the
/// weave section.
fn bench_compiled_pointer_scale(c: &mut Criterion) {
    let doc = museum_page(400, 50);
    let elements = doc.index().element_count();
    let pointers = [
        ("id_predicate", "xpointer(//painting[@id='p-200-3'])"),
        ("name_predicate", "xpointer(//room[@name='cubism'])"),
    ];

    let mut group = c.benchmark_group("xpointer_scale_100k");
    let mut sections = Vec::new();
    for (name, text) in pointers {
        let pointer = parse(text).expect("pointer parses");
        let compiled = CompiledPointer::compile(&pointer);
        assert!(compiled.uses_index(), "{text} must plan against the index");
        // Correctness first: identical locations (also warms the index).
        let interpreted = evaluate(&doc, &pointer).expect("pointer resolves");
        let fast = compiled.evaluate(&doc).expect("pointer resolves");
        assert_eq!(interpreted, fast, "{text} diverged");

        group.bench_with_input(
            BenchmarkId::new("interpreter", name),
            &(&doc, &pointer),
            |b, (doc, ptr)| b.iter(|| evaluate(doc, ptr).expect("resolves").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("compiled", name),
            &(&doc, &compiled),
            |b, (doc, ptr)| b.iter(|| ptr.evaluate(doc).expect("resolves").len()),
        );

        // Headline ratio, measured back to back so it is directly citable.
        let interp_rounds = if fast_mode() { 20 } else { 50 };
        let compiled_rounds = if fast_mode() { 2_000 } else { 10_000 };
        let t = Instant::now();
        for _ in 0..interp_rounds {
            evaluate(&doc, &pointer).expect("resolves");
        }
        let interp_per = t.elapsed().as_secs_f64() / interp_rounds as f64;
        let t = Instant::now();
        for _ in 0..compiled_rounds {
            compiled.evaluate(&doc).expect("resolves");
        }
        let compiled_per = t.elapsed().as_secs_f64() / compiled_rounds as f64;
        let speedup = interp_per / compiled_per;
        println!(
            "compiled pointer speedup ({elements} elements, {text}): {speedup:.0}x \
             (interpreter {:.2}ms, compiled {:.4}ms per eval)",
            interp_per * 1e3,
            compiled_per * 1e3,
        );
        sections.push(format!(
            "\"{name}\": {{\"interpreter_ms\": {:.4}, \"compiled_ms\": {:.5}, \
             \"speedup\": {:.0}}}",
            interp_per * 1e3,
            compiled_per * 1e3,
            speedup,
        ));
        // The acceptance bar (ISSUE 6): index-narrowed pointer forms must
        // beat the interpreter by >= 5x at 100k nodes.
        assert!(
            speedup >= 5.0,
            "compiled pointer {text} regressed below the 5x acceptance bar: {speedup:.2}x"
        );
    }
    group.finish();
    record_bench_section(
        "xpointer_100k",
        &format!(
            "{{\"elements\": {elements}, {}, \"fast_mode\": {}}}",
            sections.join(", "),
            fast_mode(),
        ),
    );
}

criterion_group!(
    benches,
    bench_pointers,
    bench_parse_only,
    bench_compiled_pointer_scale
);
criterion_main!(benches);
