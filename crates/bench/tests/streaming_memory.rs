//! Bounded-memory law for the streaming weaver (ISSUE 7 satellite).
//!
//! The streaming weave must hold O(depth + rule window) state — the stack
//! of open elements plus whatever `append`/`after` advice is waiting for
//! its element to close — **never** O(document). `StreamReport` instruments
//! exactly that (`peak_depth`, `peak_window_bytes`); this test drives the
//! weaver over the ~100k-element `museum_page(400, 50)` scale corpus and a
//! 10x-smaller control with identical shape, and asserts the peaks are (a)
//! tiny in absolute terms and (b) *equal* across the two sizes: a tenfold
//! document carries zero extra buffering.

use navsep_aspect::{AdvicePosition, Aspect, Pointcut, Weaver};
use navsep_bench::museum_page;
use navsep_xml::{ElementBuilder, WriteOptions};

/// Streamable advice that bites on every structural level of the corpus:
/// prepended room headers, appended painting markers, after-badges on the
/// `class="star"` bucket, and a before-note on cubism rooms.
fn scale_weaver() -> Weaver {
    Weaver::new().aspect(
        Aspect::new("markers")
            .text_rule(
                Pointcut::Element("room".to_string()),
                AdvicePosition::Prepend,
                "room-header",
            )
            .rule(
                Pointcut::Element("painting".to_string()),
                AdvicePosition::Append,
                vec![ElementBuilder::new("seen")],
            )
            .rule(
                Pointcut::HasClass("star".to_string()),
                AdvicePosition::After,
                vec![ElementBuilder::new("badge").attr("kind", "star")],
            )
            .text_rule(
                Pointcut::AttrEquals("name".to_string(), "cubism".to_string()),
                AdvicePosition::Before,
                "cubism ahead",
            ),
    )
}

/// Streams a `rooms`-sized corpus, returning source length, woven length,
/// and the instrumented report.
fn stream(rooms: usize) -> (usize, usize, navsep_aspect::StreamReport) {
    let page = museum_page(rooms, 50);
    let source = page.to_xml(&WriteOptions::default().declaration(false));
    let compiled = scale_weaver().compile();
    let mut sink = String::new();
    let report = compiled
        .streaming()
        .weave_stream("museum.html", &source, &mut sink)
        .expect("scale corpus streams");
    assert!(report.weave.applications() > 0, "advice must fire");
    (source.len(), sink.len(), report)
}

#[test]
fn peak_memory_is_depth_plus_rule_window_not_document_size() {
    let (small_src, _, small) = stream(40);
    let (full_src, full_out, full) = stream(400);

    // The full corpus really is the 100k-element scale document, ~10x the
    // control in bytes.
    assert_eq!(400 * (1 + 5 * 50) + 1, 100_401);
    assert!(full_src > 8 * small_src);
    assert!(full_out > full_src, "woven output carries the advice");

    // Depth bound: museum > room > painting > leaf — four simultaneously
    // open elements, regardless of how many rooms stream past.
    assert_eq!(full.peak_depth, 4);
    assert_eq!(small.peak_depth, full.peak_depth);

    // Window bound: the buffered advice bytes are a property of the rule
    // set (one `<seen/>` per open painting, one pending `<badge/>`), not
    // of the document — bit-for-bit identical peaks at 10x the input.
    assert_eq!(small.peak_window_bytes, full.peak_window_bytes);
    assert!(
        full.peak_window_bytes < 256,
        "rule window blew up: {} bytes",
        full.peak_window_bytes
    );
}

#[test]
fn instrumented_stream_matches_dom_weave_bytes() {
    let page = museum_page(40, 50);
    let source = page.to_xml(&WriteOptions::default().declaration(false));
    let compiled = scale_weaver().compile();
    let mut sink = String::new();
    compiled
        .streaming()
        .weave_stream("museum.html", &source, &mut sink)
        .expect("streams");
    let (dom, _) = compiled.weave_page("museum.html", &page).expect("weaves");
    assert_eq!(sink, dom.to_xml_string());
}
