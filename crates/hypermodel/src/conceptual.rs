//! The conceptual model: classes, relationships, and an instance store.
//!
//! OOHDM's first design phase produces a *conceptual model* — plain domain
//! classes with attributes and relationships, knowing nothing about
//! navigation (that is the point of the paper). `navsep-core`'s museum
//! generator instantiates this schema; the navigational schema in
//! [`crate::navigational`] defines *views* over it.

use crate::error::ModelError;
use std::collections::BTreeMap;
use std::fmt;

/// An attribute declaration on a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute name (e.g. `title`).
    pub name: String,
    /// Whether every instance must supply it.
    pub required: bool,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name (e.g. `Painter`).
    pub name: String,
    /// Declared attributes.
    pub attributes: Vec<AttributeDef>,
}

/// Cardinality of a relationship end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// Exactly one.
    One,
    /// Zero or more.
    Many,
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cardinality::One => "1",
            Cardinality::Many => "*",
        })
    }
}

/// A binary relationship declaration between two classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationshipDef {
    /// Relationship name (e.g. `painted`).
    pub name: String,
    /// Source class name.
    pub source: String,
    /// Target class name.
    pub target: String,
    /// Cardinality at the target end (source assumed `Many` for simplicity).
    pub target_cardinality: Cardinality,
}

/// The conceptual schema: class and relationship declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConceptualSchema {
    classes: Vec<ClassDef>,
    relationships: Vec<RelationshipDef>,
}

impl ConceptualSchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class with the given attribute names (all optional).
    pub fn class(mut self, name: &str, attributes: &[&str]) -> Self {
        self.classes.push(ClassDef {
            name: name.to_string(),
            attributes: attributes
                .iter()
                .map(|a| AttributeDef {
                    name: (*a).to_string(),
                    required: false,
                })
                .collect(),
        });
        self
    }

    /// Declares a relationship `source -name-> target`.
    pub fn relationship(
        mut self,
        name: &str,
        source: &str,
        target: &str,
        target_cardinality: Cardinality,
    ) -> Self {
        self.relationships.push(RelationshipDef {
            name: name.to_string(),
            source: source.to_string(),
            target: target.to_string(),
            target_cardinality,
        });
        self
    }

    /// Looks up a class declaration.
    pub fn class_def(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Looks up a relationship declaration.
    pub fn relationship_def(&self, name: &str) -> Option<&RelationshipDef> {
        self.relationships.iter().find(|r| r.name == name)
    }

    /// All class declarations.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// All relationship declarations.
    pub fn relationships(&self) -> &[RelationshipDef] {
        &self.relationships
    }
}

/// A stable object identifier (unique within an [`InstanceStore`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(String);

impl ObjectId {
    /// Wraps a string id.
    pub fn new(id: impl Into<String>) -> Self {
        ObjectId(id.into())
    }

    /// The id as text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectId {
    fn from(s: &str) -> Self {
        ObjectId::new(s)
    }
}

impl From<String> for ObjectId {
    fn from(s: String) -> Self {
        ObjectId(s)
    }
}

impl From<&ObjectId> for ObjectId {
    fn from(id: &ObjectId) -> Self {
        id.clone()
    }
}

/// One instance of a conceptual class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptualObject {
    id: ObjectId,
    class: String,
    attributes: BTreeMap<String, String>,
}

impl ConceptualObject {
    /// The object's id.
    pub fn id(&self) -> &ObjectId {
        &self.id
    }

    /// The object's class name.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// An attribute value.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.get(name).map(String::as_str)
    }

    /// All attributes, sorted by name.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attributes
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// A populated conceptual model: objects plus relationship links, validated
/// against a [`ConceptualSchema`].
///
/// # Examples
///
/// ```
/// use navsep_hypermodel::{Cardinality, ConceptualSchema, InstanceStore};
///
/// let schema = ConceptualSchema::new()
///     .class("Painter", &["name"])
///     .class("Painting", &["title", "year"])
///     .relationship("painted", "Painter", "Painting", Cardinality::Many);
/// let mut store = InstanceStore::new(schema);
/// store.create("picasso", "Painter", &[("name", "Pablo Picasso")])?;
/// store.create("guitar", "Painting", &[("title", "Guitar")])?;
/// store.link("painted", "picasso", "guitar")?;
/// assert_eq!(store.related("picasso", "painted")?.len(), 1);
/// # Ok::<(), navsep_hypermodel::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstanceStore {
    schema: ConceptualSchema,
    objects: Vec<ConceptualObject>,
    links: Vec<(String, ObjectId, ObjectId)>,
}

impl InstanceStore {
    /// Creates an empty store governed by `schema`.
    pub fn new(schema: ConceptualSchema) -> Self {
        InstanceStore {
            schema,
            objects: Vec::new(),
            links: Vec::new(),
        }
    }

    /// The governing schema.
    pub fn schema(&self) -> &ConceptualSchema {
        &self.schema
    }

    /// Creates an object of `class` with the given attributes.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownClass`] for undeclared classes;
    /// * [`ModelError::UnknownAttribute`] for undeclared attributes;
    /// * [`ModelError::DuplicateObject`] when the id is taken.
    pub fn create(
        &mut self,
        id: impl Into<ObjectId>,
        class: &str,
        attributes: &[(&str, &str)],
    ) -> Result<ObjectId, ModelError> {
        let id = id.into();
        let class_def = self
            .schema
            .class_def(class)
            .ok_or_else(|| ModelError::UnknownClass(class.to_string()))?;
        for (name, _) in attributes {
            if !class_def.attributes.iter().any(|a| a.name == *name) {
                return Err(ModelError::UnknownAttribute {
                    class: class.to_string(),
                    attribute: (*name).to_string(),
                });
            }
        }
        if self.objects.iter().any(|o| o.id == id) {
            return Err(ModelError::DuplicateObject(id.to_string()));
        }
        self.objects.push(ConceptualObject {
            id: id.clone(),
            class: class.to_string(),
            attributes: attributes
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
        Ok(id)
    }

    /// Links `from` to `to` through `relationship`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownRelationship`] / [`ModelError::UnknownObject`];
    /// * [`ModelError::BadLink`] when endpoint classes don't match the
    ///   declaration or a `One`-cardinality end would be exceeded.
    pub fn link(
        &mut self,
        relationship: &str,
        from: impl Into<ObjectId>,
        to: impl Into<ObjectId>,
    ) -> Result<(), ModelError> {
        let from = from.into();
        let to = to.into();
        let rel = self
            .schema
            .relationship_def(relationship)
            .ok_or_else(|| ModelError::UnknownRelationship(relationship.to_string()))?
            .clone();
        let from_obj = self
            .object(&from)
            .ok_or_else(|| ModelError::UnknownObject(from.to_string()))?;
        let to_obj = self
            .object(&to)
            .ok_or_else(|| ModelError::UnknownObject(to.to_string()))?;
        if from_obj.class() != rel.source {
            return Err(ModelError::BadLink {
                relationship: rel.name.clone(),
                reason: format!("source must be {}, got {}", rel.source, from_obj.class()),
            });
        }
        if to_obj.class() != rel.target {
            return Err(ModelError::BadLink {
                relationship: rel.name.clone(),
                reason: format!("target must be {}, got {}", rel.target, to_obj.class()),
            });
        }
        if rel.target_cardinality == Cardinality::One
            && self
                .links
                .iter()
                .any(|(r, f, _)| *r == rel.name && *f == from)
        {
            return Err(ModelError::BadLink {
                relationship: rel.name.clone(),
                reason: "target cardinality 1 exceeded".into(),
            });
        }
        self.links.push((rel.name.clone(), from, to));
        Ok(())
    }

    /// Looks up an object by id.
    pub fn object(&self, id: &ObjectId) -> Option<&ConceptualObject> {
        self.objects.iter().find(|o| &o.id == id)
    }

    /// Looks up an object by raw id text.
    pub fn object_by_str(&self, id: &str) -> Option<&ConceptualObject> {
        self.objects.iter().find(|o| o.id.as_str() == id)
    }

    /// All objects of `class`, in creation order.
    pub fn objects_of_class<'a>(
        &'a self,
        class: &'a str,
    ) -> impl Iterator<Item = &'a ConceptualObject> + 'a {
        self.objects.iter().filter(move |o| o.class == class)
    }

    /// All objects.
    pub fn objects(&self) -> &[ConceptualObject] {
        &self.objects
    }

    /// Objects linked from `from` through `relationship`, in link order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownObject`] when `from` does not exist.
    pub fn related(
        &self,
        from: impl Into<ObjectId>,
        relationship: &str,
    ) -> Result<Vec<&ConceptualObject>, ModelError> {
        let from = from.into();
        if self.object(&from).is_none() {
            return Err(ModelError::UnknownObject(from.to_string()));
        }
        Ok(self
            .links
            .iter()
            .filter(|(r, f, _)| r == relationship && *f == from)
            .filter_map(|(_, _, t)| self.object(t))
            .collect())
    }

    /// Objects that link *to* `to` through `relationship` (reverse lookup).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownObject`] when `to` does not exist.
    pub fn related_to(
        &self,
        to: impl Into<ObjectId>,
        relationship: &str,
    ) -> Result<Vec<&ConceptualObject>, ModelError> {
        let to = to.into();
        if self.object(&to).is_none() {
            return Err(ModelError::UnknownObject(to.to_string()));
        }
        Ok(self
            .links
            .iter()
            .filter(|(r, _, t)| r == relationship && *t == to)
            .filter_map(|(_, f, _)| self.object(f))
            .collect())
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when no objects exist.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ConceptualSchema {
        ConceptualSchema::new()
            .class("Painter", &["name"])
            .class("Painting", &["title", "year"])
            .class("Movement", &["name"])
            .relationship("painted", "Painter", "Painting", Cardinality::Many)
            .relationship("belongs_to", "Painting", "Movement", Cardinality::One)
    }

    fn store() -> InstanceStore {
        let mut s = InstanceStore::new(schema());
        s.create("picasso", "Painter", &[("name", "Pablo Picasso")])
            .unwrap();
        s.create(
            "guitar",
            "Painting",
            &[("title", "Guitar"), ("year", "1913")],
        )
        .unwrap();
        s.create("guernica", "Painting", &[("title", "Guernica")])
            .unwrap();
        s.create("cubism", "Movement", &[("name", "Cubism")])
            .unwrap();
        s.link("painted", "picasso", "guitar").unwrap();
        s.link("painted", "picasso", "guernica").unwrap();
        s.link("belongs_to", "guitar", "cubism").unwrap();
        s
    }

    #[test]
    fn create_and_query() {
        let s = store();
        assert_eq!(s.len(), 4);
        let guitar = s.object_by_str("guitar").unwrap();
        assert_eq!(guitar.attribute("title"), Some("Guitar"));
        assert_eq!(guitar.class(), "Painting");
        assert_eq!(s.objects_of_class("Painting").count(), 2);
    }

    #[test]
    fn related_follows_links_in_order() {
        let s = store();
        let works = s.related("picasso", "painted").unwrap();
        assert_eq!(works.len(), 2);
        assert_eq!(works[0].id().as_str(), "guitar");
        assert_eq!(works[1].id().as_str(), "guernica");
    }

    #[test]
    fn reverse_lookup() {
        let s = store();
        let by = s.related_to("guitar", "painted").unwrap();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].id().as_str(), "picasso");
    }

    #[test]
    fn schema_violations_rejected() {
        let mut s = store();
        assert!(matches!(
            s.create("x", "Sculptor", &[]),
            Err(ModelError::UnknownClass(_))
        ));
        assert!(matches!(
            s.create("y", "Painting", &[("smell", "oil")]),
            Err(ModelError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.create("guitar", "Painting", &[]),
            Err(ModelError::DuplicateObject(_))
        ));
        assert!(matches!(
            s.link("sculpted", "picasso", "guitar"),
            Err(ModelError::UnknownRelationship(_))
        ));
        assert!(matches!(
            s.link("painted", "guitar", "guernica"),
            Err(ModelError::BadLink { .. })
        ));
    }

    #[test]
    fn one_cardinality_enforced() {
        let mut s = store();
        s.create("surrealism", "Movement", &[("name", "Surrealism")])
            .unwrap();
        // guitar already belongs to cubism.
        assert!(matches!(
            s.link("belongs_to", "guitar", "surrealism"),
            Err(ModelError::BadLink { .. })
        ));
    }

    #[test]
    fn unknown_object_in_queries() {
        let s = store();
        assert!(s.related("nobody", "painted").is_err());
        assert!(s.related_to("nothing", "painted").is_err());
    }
}
