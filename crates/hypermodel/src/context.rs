//! Navigational contexts — OOHDM's contribution, and the paper's key
//! navigation concept.
//!
//! A **navigational context** is "a set of nodes, links, context classes and
//! other navigational contexts … organized in consistent sets that can be
//! traversed following a particular order" (paper §4). The museum example in
//! §2 is about exactly this: *Next* from the Guitar page means something
//! different inside the "paintings by Picasso" context than inside the
//! "Cubism paintings" context.
//!
//! A [`ContextFamily`] groups the contexts produced by one derivation rule
//! ("by painter" yields one context per painter).

use crate::access::{AccessGraph, AccessStructureKind, Member};
use crate::conceptual::InstanceStore;
use crate::error::ModelError;
use crate::navigational::NavigationalSchema;

/// One navigational context: an ordered member set plus its access structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavigationalContext {
    /// Unique context name, e.g. `by-painter:picasso`.
    pub name: String,
    /// Display title, e.g. `Paintings by Pablo Picasso`.
    pub title: String,
    /// Ordered members.
    pub members: Vec<Member>,
    /// How the members are organized.
    pub access: AccessStructureKind,
}

impl NavigationalContext {
    /// Creates a context.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidContext`] for an empty name.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        members: Vec<Member>,
        access: AccessStructureKind,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ModelError::InvalidContext("empty context name".into()));
        }
        Ok(NavigationalContext {
            name,
            title: title.into(),
            members,
            access,
        })
    }

    /// The derived access graph for this context.
    pub fn access_graph(&self) -> AccessGraph {
        AccessGraph::build(self.access, &self.members)
    }

    /// Whether `slug` is a member.
    pub fn contains(&self, slug: &str) -> bool {
        self.members.iter().any(|m| m.slug == slug)
    }

    /// 1-based position of `slug` among the members.
    pub fn position(&self, slug: &str) -> Option<usize> {
        self.members
            .iter()
            .position(|m| m.slug == slug)
            .map(|p| p + 1)
    }

    /// The member after `slug` *in this context's order* — the paper's
    /// context-dependent "Next".
    pub fn next_of(&self, slug: &str) -> Option<&Member> {
        let pos = self.members.iter().position(|m| m.slug == slug)?;
        self.members.get(pos + 1)
    }

    /// The member before `slug` in this context's order.
    pub fn prev_of(&self, slug: &str) -> Option<&Member> {
        let pos = self.members.iter().position(|m| m.slug == slug)?;
        pos.checked_sub(1).and_then(|p| self.members.get(p))
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the context has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A family of contexts produced by one derivation rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextFamily {
    /// Family name, e.g. `by-painter`.
    pub name: String,
    /// The contexts, one per grouping object.
    pub contexts: Vec<NavigationalContext>,
}

impl ContextFamily {
    /// Derives one context per object of `group_class`: the members are the
    /// objects related through `relationship`, viewed as `member_node_class`
    /// nodes, in link order.
    ///
    /// This is the "paintings **by painter**" rule: `group_class = Painter`,
    /// `relationship = painted`, members are `PaintingNode`s.
    ///
    /// # Errors
    ///
    /// Propagates schema violations from node derivation and relationship
    /// lookup.
    #[allow(clippy::too_many_arguments)] // the derivation rule genuinely has seven knobs
    pub fn group_by(
        family_name: &str,
        store: &InstanceStore,
        nav: &NavigationalSchema,
        group_class: &str,
        group_title_attribute: &str,
        relationship: &str,
        member_node_class: &str,
        access: AccessStructureKind,
    ) -> Result<Self, ModelError> {
        if store.schema().relationship_def(relationship).is_none() {
            return Err(ModelError::UnknownRelationship(relationship.to_string()));
        }
        // Validate the member node class exists up front.
        let _ = nav
            .node_class_named(member_node_class)
            .ok_or_else(|| ModelError::UnknownClass(member_node_class.to_string()))?;
        let member_nodes = nav.derive_nodes(member_node_class, store)?;
        let mut contexts = Vec::new();
        for group in store.objects_of_class(group_class) {
            let related = store.related(group.id().clone(), relationship)?;
            let members: Vec<Member> = related
                .iter()
                .filter_map(|obj| {
                    member_nodes
                        .iter()
                        .find(|n| n.slug == obj.id().as_str())
                        .map(|n| Member::new(n.slug.clone(), n.title.clone()))
                })
                .collect();
            let group_title = group
                .attribute(group_title_attribute)
                .unwrap_or(group.id().as_str());
            contexts.push(NavigationalContext::new(
                format!("{family_name}:{}", group.id()),
                group_title.to_string(),
                members,
                access,
            )?);
        }
        Ok(ContextFamily {
            name: family_name.to_string(),
            contexts,
        })
    }

    /// The context grouping object `group_slug` (e.g. `by-painter:picasso`).
    pub fn context_of(&self, group_slug: &str) -> Option<&NavigationalContext> {
        let want = format!("{}:{group_slug}", self.name);
        self.contexts.iter().find(|c| c.name == want)
    }

    /// All contexts containing member `slug`.
    pub fn contexts_containing(&self, slug: &str) -> Vec<&NavigationalContext> {
        self.contexts.iter().filter(|c| c.contains(slug)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conceptual::{Cardinality, ConceptualSchema};

    /// The paper's §2 museum: navigation by author vs by pictorial movement.
    fn museum() -> (InstanceStore, NavigationalSchema) {
        let schema = ConceptualSchema::new()
            .class("Painter", &["name"])
            .class("Movement", &["name"])
            .class("Painting", &["title", "year"])
            .relationship("painted", "Painter", "Painting", Cardinality::Many)
            .relationship("includes", "Movement", "Painting", Cardinality::Many);
        let mut s = InstanceStore::new(schema);
        s.create("picasso", "Painter", &[("name", "Pablo Picasso")])
            .unwrap();
        s.create("braque", "Painter", &[("name", "Georges Braque")])
            .unwrap();
        s.create("cubism", "Movement", &[("name", "Cubism")])
            .unwrap();
        s.create(
            "guitar",
            "Painting",
            &[("title", "Guitar"), ("year", "1913")],
        )
        .unwrap();
        s.create(
            "guernica",
            "Painting",
            &[("title", "Guernica"), ("year", "1937")],
        )
        .unwrap();
        s.create(
            "violin",
            "Painting",
            &[("title", "Violin and Candlestick"), ("year", "1910")],
        )
        .unwrap();
        s.link("painted", "picasso", "guitar").unwrap();
        s.link("painted", "picasso", "guernica").unwrap();
        s.link("painted", "braque", "violin").unwrap();
        // Cubism includes guitar and violin — but NOT guernica.
        s.link("includes", "cubism", "guitar").unwrap();
        s.link("includes", "cubism", "violin").unwrap();
        let nav = NavigationalSchema::new()
            .node_class("PaintingNode", "Painting", "title", &["title", "year"])
            .node_class("PainterNode", "Painter", "name", &["name"]);
        (s, nav)
    }

    #[test]
    fn group_by_painter() {
        let (store, nav) = museum();
        let fam = ContextFamily::group_by(
            "by-painter",
            &store,
            &nav,
            "Painter",
            "name",
            "painted",
            "PaintingNode",
            AccessStructureKind::IndexedGuidedTour,
        )
        .unwrap();
        assert_eq!(fam.contexts.len(), 2);
        let picasso = fam.context_of("picasso").unwrap();
        assert_eq!(picasso.len(), 2);
        assert_eq!(picasso.title, "Pablo Picasso");
        assert!(picasso.contains("guitar"));
        assert!(picasso.contains("guernica"));
    }

    #[test]
    fn the_papers_context_dependent_next() {
        // §2: reaching Guitar via the author gives Next = next painting by
        // the same author; reaching it via the movement gives Next = next
        // painting in that movement.
        let (store, nav) = museum();
        let by_painter = ContextFamily::group_by(
            "by-painter",
            &store,
            &nav,
            "Painter",
            "name",
            "painted",
            "PaintingNode",
            AccessStructureKind::IndexedGuidedTour,
        )
        .unwrap();
        let by_movement = ContextFamily::group_by(
            "by-movement",
            &store,
            &nav,
            "Movement",
            "name",
            "includes",
            "PaintingNode",
            AccessStructureKind::IndexedGuidedTour,
        )
        .unwrap();
        let via_author = by_painter.context_of("picasso").unwrap();
        let via_movement = by_movement.context_of("cubism").unwrap();
        // Same node, different Next.
        assert_eq!(via_author.next_of("guitar").unwrap().slug, "guernica");
        assert_eq!(via_movement.next_of("guitar").unwrap().slug, "violin");
    }

    #[test]
    fn contexts_containing_finds_all() {
        let (store, nav) = museum();
        let by_movement = ContextFamily::group_by(
            "by-movement",
            &store,
            &nav,
            "Movement",
            "name",
            "includes",
            "PaintingNode",
            AccessStructureKind::Index,
        )
        .unwrap();
        assert_eq!(by_movement.contexts_containing("guitar").len(), 1);
        assert_eq!(by_movement.contexts_containing("guernica").len(), 0);
    }

    #[test]
    fn position_and_prev() {
        let (store, nav) = museum();
        let fam = ContextFamily::group_by(
            "by-painter",
            &store,
            &nav,
            "Painter",
            "name",
            "painted",
            "PaintingNode",
            AccessStructureKind::GuidedTour,
        )
        .unwrap();
        let ctx = fam.context_of("picasso").unwrap();
        assert_eq!(ctx.position("guitar"), Some(1));
        assert_eq!(ctx.position("guernica"), Some(2));
        assert_eq!(ctx.prev_of("guernica").unwrap().slug, "guitar");
        assert!(ctx.prev_of("guitar").is_none());
    }

    #[test]
    fn unknown_relationship_rejected() {
        let (store, nav) = museum();
        assert!(matches!(
            ContextFamily::group_by(
                "x",
                &store,
                &nav,
                "Painter",
                "name",
                "sculpted",
                "PaintingNode",
                AccessStructureKind::Index,
            ),
            Err(ModelError::UnknownRelationship(_))
        ));
    }

    #[test]
    fn empty_context_name_rejected() {
        assert!(NavigationalContext::new("", "t", vec![], AccessStructureKind::Index).is_err());
    }

    #[test]
    fn access_graph_respects_context_order() {
        let (store, nav) = museum();
        let fam = ContextFamily::group_by(
            "by-painter",
            &store,
            &nav,
            "Painter",
            "name",
            "painted",
            "PaintingNode",
            AccessStructureKind::IndexedGuidedTour,
        )
        .unwrap();
        let g = fam.context_of("picasso").unwrap().access_graph();
        assert_eq!(g.next_of("guitar").unwrap().slug, "guernica");
    }
}
