//! Implementation-class models — the reproduction of the paper's Figure 5.
//!
//! Figure 5 shows the class diagrams realizing the Index (5a) and Indexed
//! Guided Tour (5b) access structures. This module models class diagrams as
//! data ([`ClassModel`]), provides the two figures as constructors, and
//! exports text and Graphviz DOT renderings so the bench harness can
//! regenerate the figure mechanically.

use std::fmt;

/// One attribute in a class box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassAttribute {
    /// Attribute name.
    pub name: String,
    /// Type annotation (informal).
    pub ty: String,
}

/// One operation in a class box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassOperation {
    /// Operation name.
    pub name: String,
    /// Signature (informal, printed verbatim after the name).
    pub signature: String,
}

/// An association between two classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// Source class name.
    pub from: String,
    /// Target class name.
    pub to: String,
    /// Role/label on the association.
    pub label: String,
    /// Multiplicity at the target end.
    pub multiplicity: String,
}

/// One class box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Attributes.
    pub attributes: Vec<ClassAttribute>,
    /// Operations.
    pub operations: Vec<ClassOperation>,
}

impl ClassSpec {
    /// Creates an empty class box.
    pub fn new(name: impl Into<String>) -> Self {
        ClassSpec {
            name: name.into(),
            attributes: Vec::new(),
            operations: Vec::new(),
        }
    }

    /// Adds an attribute.
    pub fn attribute(mut self, name: &str, ty: &str) -> Self {
        self.attributes.push(ClassAttribute {
            name: name.to_string(),
            ty: ty.to_string(),
        });
        self
    }

    /// Adds an operation.
    pub fn operation(mut self, name: &str, signature: &str) -> Self {
        self.operations.push(ClassOperation {
            name: name.to_string(),
            signature: signature.to_string(),
        });
        self
    }
}

/// A class diagram: classes plus associations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassModel {
    /// Diagram title.
    pub title: String,
    /// The class boxes.
    pub classes: Vec<ClassSpec>,
    /// The associations.
    pub associations: Vec<Association>,
}

impl ClassModel {
    /// Creates an empty diagram.
    pub fn new(title: impl Into<String>) -> Self {
        ClassModel {
            title: title.into(),
            classes: Vec::new(),
            associations: Vec::new(),
        }
    }

    /// Adds a class box.
    pub fn class(mut self, class: ClassSpec) -> Self {
        self.classes.push(class);
        self
    }

    /// Adds an association.
    pub fn associate(mut self, from: &str, to: &str, label: &str, multiplicity: &str) -> Self {
        self.associations.push(Association {
            from: from.to_string(),
            to: to.to_string(),
            label: label.to_string(),
            multiplicity: multiplicity.to_string(),
        });
        self
    }

    /// Looks up a class by name.
    pub fn class_named(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Renders the diagram as indented ASCII text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for c in &self.classes {
            out.push_str(&format!("class {}\n", c.name));
            for a in &c.attributes {
                out.push_str(&format!("  - {}: {}\n", a.name, a.ty));
            }
            for o in &c.operations {
                out.push_str(&format!("  + {}{}\n", o.name, o.signature));
            }
        }
        for a in &self.associations {
            out.push_str(&format!(
                "{} --{}--> {} [{}]\n",
                a.from, a.label, a.to, a.multiplicity
            ));
        }
        out
    }

    /// Renders the diagram as Graphviz DOT.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "digraph \"{}\" {{\n  node [shape=record];\n",
            self.title
        ));
        for c in &self.classes {
            let attrs: Vec<String> = c
                .attributes
                .iter()
                .map(|a| format!("{}: {}", a.name, a.ty))
                .collect();
            let ops: Vec<String> = c
                .operations
                .iter()
                .map(|o| format!("{}{}", o.name, o.signature))
                .collect();
            out.push_str(&format!(
                "  \"{}\" [label=\"{{{}|{}|{}}}\"];\n",
                c.name,
                c.name,
                attrs.join("\\l"),
                ops.join("\\l"),
            ));
        }
        for a in &self.associations {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{} [{}]\"];\n",
                a.from, a.to, a.label, a.multiplicity
            ));
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for ClassModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Figure 5(a): the classes implementing the **Index** access structure.
pub fn index_class_model() -> ClassModel {
    ClassModel::new("Index implementation classes (paper Fig. 5a)")
        .class(
            ClassSpec::new("Node")
                .attribute("slug", "String")
                .attribute("title", "String")
                .operation("render", "() -> Page"),
        )
        .class(
            ClassSpec::new("Index")
                .attribute("entries", "List<IndexEntry>")
                .operation("add_entry", "(target: Node)")
                .operation("render", "() -> Page"),
        )
        .class(
            ClassSpec::new("IndexEntry")
                .attribute("label", "String")
                .operation("target", "() -> Node"),
        )
        .associate("Index", "IndexEntry", "entries", "*")
        .associate("IndexEntry", "Node", "target", "1")
        .associate("Node", "Index", "up", "1")
}

/// Figure 5(b): the classes implementing the **Indexed Guided Tour**.
///
/// The delta against [`index_class_model`] is the `TourStop` chaining —
/// exactly the design change the paper's customer request forces.
pub fn indexed_guided_tour_class_model() -> ClassModel {
    ClassModel::new("Indexed Guided Tour implementation classes (paper Fig. 5b)")
        .class(
            ClassSpec::new("Node")
                .attribute("slug", "String")
                .attribute("title", "String")
                .operation("render", "() -> Page"),
        )
        .class(
            ClassSpec::new("Index")
                .attribute("entries", "List<IndexEntry>")
                .operation("add_entry", "(target: Node)")
                .operation("render", "() -> Page"),
        )
        .class(
            ClassSpec::new("IndexEntry")
                .attribute("label", "String")
                .operation("target", "() -> Node"),
        )
        .class(
            ClassSpec::new("TourStop")
                .attribute("position", "usize")
                .operation("next", "() -> Option<TourStop>")
                .operation("previous", "() -> Option<TourStop>"),
        )
        .associate("Index", "IndexEntry", "entries", "*")
        .associate("IndexEntry", "Node", "target", "1")
        .associate("Node", "Index", "up", "1")
        .associate("TourStop", "Node", "node", "1")
        .associate("TourStop", "TourStop", "next", "0..1")
}

/// The classes added by the Index → Indexed Guided Tour change: the delta the
/// separated design localizes and the tangled design spreads over all pages.
pub fn class_model_delta() -> Vec<String> {
    let index = index_class_model();
    let igt = indexed_guided_tour_class_model();
    igt.classes
        .iter()
        .filter(|c| index.class_named(&c.name).is_none())
        .map(|c| c.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_5a_contents() {
        let m = index_class_model();
        assert!(m.class_named("Index").is_some());
        assert!(m.class_named("IndexEntry").is_some());
        assert!(m.class_named("Node").is_some());
        assert!(m.class_named("TourStop").is_none());
        assert_eq!(m.associations.len(), 3);
    }

    #[test]
    fn figure_5b_adds_tour_stop() {
        let m = indexed_guided_tour_class_model();
        let stop = m.class_named("TourStop").unwrap();
        assert!(stop.operations.iter().any(|o| o.name == "next"));
        assert!(stop.operations.iter().any(|o| o.name == "previous"));
        // Self-association for chaining.
        assert!(m
            .associations
            .iter()
            .any(|a| a.from == "TourStop" && a.to == "TourStop"));
    }

    #[test]
    fn delta_is_exactly_tour_stop() {
        assert_eq!(class_model_delta(), vec!["TourStop".to_string()]);
    }

    #[test]
    fn text_rendering() {
        let text = index_class_model().to_text();
        assert!(text.contains("class Index"));
        assert!(text.contains("+ render() -> Page"));
        assert!(text.contains("Index --entries--> IndexEntry [*]"));
    }

    #[test]
    fn dot_rendering_is_valid_ish() {
        let dot = indexed_guided_tour_class_model().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"TourStop\" -> \"TourStop\""));
        assert!(dot.ends_with("}\n"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn display_uses_text_form() {
        let m = index_class_model();
        assert_eq!(m.to_string(), m.to_text());
    }
}
