//! # navsep-hypermodel — the design-level primitives
//!
//! The web-design methodologies the paper surveys (HDM, RMM, OOHDM) all
//! model navigation with the same primitives: **nodes** (views of conceptual
//! classes), **links** (views of relationships), **access structures**
//! (Index, Guided Tour, Indexed Guided Tour) and — OOHDM's contribution —
//! **navigational contexts**. This crate implements those primitives so the
//! rest of the stack can carry them from design to implementation, which is
//! the paper's whole argument.
//!
//! * [`conceptual`] — classes, relationships, and a validated instance store;
//! * [`navigational`] — node/link classes as views over the conceptual model;
//! * [`access`] — the three access structures and their derived link graphs;
//! * [`context`] — navigational contexts and group-by families;
//! * [`route`] — route-style specifications (NautiLOD-inspired) compiled
//!   over contexts into allowed next-hop sets;
//! * [`classes`] — the implementation-class diagrams of the paper's Fig. 5.
//!
//! ## Quick start
//!
//! ```
//! use navsep_hypermodel::{
//!     AccessStructureKind, Cardinality, ConceptualSchema, ContextFamily, InstanceStore,
//!     NavigationalSchema,
//! };
//!
//! let schema = ConceptualSchema::new()
//!     .class("Painter", &["name"])
//!     .class("Painting", &["title"])
//!     .relationship("painted", "Painter", "Painting", Cardinality::Many);
//! let mut store = InstanceStore::new(schema);
//! store.create("picasso", "Painter", &[("name", "Pablo Picasso")])?;
//! store.create("guitar", "Painting", &[("title", "Guitar")])?;
//! store.create("guernica", "Painting", &[("title", "Guernica")])?;
//! store.link("painted", "picasso", "guitar")?;
//! store.link("painted", "picasso", "guernica")?;
//!
//! let nav = NavigationalSchema::new()
//!     .node_class("PaintingNode", "Painting", "title", &["title"]);
//! let by_painter = ContextFamily::group_by(
//!     "by-painter", &store, &nav, "Painter", "name", "painted",
//!     "PaintingNode", AccessStructureKind::IndexedGuidedTour,
//! )?;
//! let picasso = by_painter.context_of("picasso").unwrap();
//! assert_eq!(picasso.next_of("guitar").unwrap().slug, "guernica");
//! # Ok::<(), navsep_hypermodel::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod classes;
pub mod conceptual;
pub mod context;
pub mod error;
pub mod navigational;
pub mod route;

pub use access::{AccessGraph, AccessStructureKind, Member, NavLink, NavLinkKind, NodeRef};
pub use classes::{
    class_model_delta, index_class_model, indexed_guided_tour_class_model, Association,
    ClassAttribute, ClassModel, ClassOperation, ClassSpec,
};
pub use conceptual::{
    AttributeDef, Cardinality, ClassDef, ConceptualObject, ConceptualSchema, InstanceStore,
    ObjectId, RelationshipDef,
};
pub use context::{ContextFamily, NavigationalContext};
pub use error::ModelError;
pub use navigational::{LinkClass, NavNode, NavigationalSchema, NodeClass};
pub use route::{CompiledRoute, RouteError, RouteSpec, RouteState, RouteStep};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InstanceStore>();
        assert_send_sync::<AccessGraph>();
        assert_send_sync::<NavigationalContext>();
        assert_send_sync::<ClassModel>();
        assert_send_sync::<ModelError>();
    }
}
