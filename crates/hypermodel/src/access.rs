//! Access structures: Index, Guided Tour, and Indexed Guided Tour.
//!
//! These are the OOHDM/HDM primitives at the heart of the paper's motivating
//! example (its Figure 2):
//!
//! * **Index** — an entry page lists every member; each member links back up
//!   to the index.
//! * **Guided Tour** — members form a next/previous chain entered at the
//!   first member.
//! * **Indexed Guided Tour** — both at once. Switching Index → Indexed
//!   Guided Tour is precisely the paper's "conceptually simple change" whose
//!   tangled cost Figures 3–4 dramatize.

use std::fmt;

/// Which access structure organizes a context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessStructureKind {
    /// Entry page with links to all members; members link back.
    Index,
    /// Sequential next/previous chain.
    GuidedTour,
    /// Index plus the sequential chain (the paper's Figure 2(b)).
    IndexedGuidedTour,
}

impl fmt::Display for AccessStructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessStructureKind::Index => "Index",
            AccessStructureKind::GuidedTour => "GuidedTour",
            AccessStructureKind::IndexedGuidedTour => "IndexedGuidedTour",
        })
    }
}

/// One endpoint in an access graph: the entry (index) page or a member.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// The context's entry/index page.
    Entry,
    /// The member with this slug.
    Member(String),
}

impl NodeRef {
    /// The member slug, when this is a member.
    pub fn slug(&self) -> Option<&str> {
        match self {
            NodeRef::Entry => None,
            NodeRef::Member(s) => Some(s),
        }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Entry => f.write_str("<entry>"),
            NodeRef::Member(s) => f.write_str(s),
        }
    }
}

/// The navigational meaning of one link in an access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NavLinkKind {
    /// Index page → a member.
    IndexEntry,
    /// Member → the following member.
    Next,
    /// Member → the preceding member.
    Previous,
    /// Member → the index page.
    UpToIndex,
    /// Entry point of a guided tour (entry → first member).
    TourStart,
}

impl NavLinkKind {
    /// The arcrole URI navsep uses for this link kind in XLink linkbases.
    pub fn arcrole(self) -> &'static str {
        match self {
            NavLinkKind::IndexEntry => "urn:navsep:nav:index-entry",
            NavLinkKind::Next => "urn:navsep:nav:next",
            NavLinkKind::Previous => "urn:navsep:nav:previous",
            NavLinkKind::UpToIndex => "urn:navsep:nav:up",
            NavLinkKind::TourStart => "urn:navsep:nav:tour-start",
        }
    }

    /// Parses an arcrole back to a link kind.
    pub fn from_arcrole(arcrole: &str) -> Option<Self> {
        match arcrole {
            "urn:navsep:nav:index-entry" => Some(NavLinkKind::IndexEntry),
            "urn:navsep:nav:next" => Some(NavLinkKind::Next),
            "urn:navsep:nav:previous" => Some(NavLinkKind::Previous),
            "urn:navsep:nav:up" => Some(NavLinkKind::UpToIndex),
            "urn:navsep:nav:tour-start" => Some(NavLinkKind::TourStart),
            _ => None,
        }
    }

    /// The anchor text conventionally shown for this kind of link.
    pub fn default_label(self) -> &'static str {
        match self {
            NavLinkKind::IndexEntry => "",
            NavLinkKind::Next => "Next",
            NavLinkKind::Previous => "Previous",
            NavLinkKind::UpToIndex => "Back to index",
            NavLinkKind::TourStart => "Start tour",
        }
    }
}

impl fmt::Display for NavLinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NavLinkKind::IndexEntry => "index-entry",
            NavLinkKind::Next => "next",
            NavLinkKind::Previous => "previous",
            NavLinkKind::UpToIndex => "up",
            NavLinkKind::TourStart => "tour-start",
        })
    }
}

/// One derived navigational link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavLink {
    /// Navigational meaning.
    pub kind: NavLinkKind,
    /// Starting page.
    pub from: NodeRef,
    /// Ending page.
    pub to: NodeRef,
    /// Anchor text (member title for index entries, else the kind's label).
    pub label: String,
}

/// A member of a context: slug (page identity) plus display title.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Member {
    /// Stable page slug, e.g. `guitar`.
    pub slug: String,
    /// Human-readable title, e.g. `Guitar`.
    pub title: String,
}

impl Member {
    /// Creates a member.
    pub fn new(slug: impl Into<String>, title: impl Into<String>) -> Self {
        Member {
            slug: slug.into(),
            title: title.into(),
        }
    }
}

/// The complete set of navigational links an access structure derives for an
/// ordered member list.
///
/// # Examples
///
/// ```
/// use navsep_hypermodel::{AccessGraph, AccessStructureKind, Member, NavLinkKind};
///
/// let members = [Member::new("guitar", "Guitar"), Member::new("guernica", "Guernica")];
/// let graph = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &members);
/// // Guitar's outgoing links: Next (to guernica) + back-to-index.
/// let outgoing = graph.outgoing_of_member("guitar");
/// assert!(outgoing.iter().any(|l| l.kind == NavLinkKind::Next));
/// assert!(outgoing.iter().any(|l| l.kind == NavLinkKind::UpToIndex));
/// assert!(!outgoing.iter().any(|l| l.kind == NavLinkKind::Previous)); // first member
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessGraph {
    kind: AccessStructureKind,
    members: Vec<Member>,
    links: Vec<NavLink>,
}

impl AccessGraph {
    /// Derives the link set for `members` under `kind`.
    pub fn build(kind: AccessStructureKind, members: &[Member]) -> Self {
        let mut links = Vec::new();
        let with_index = matches!(
            kind,
            AccessStructureKind::Index | AccessStructureKind::IndexedGuidedTour
        );
        let with_tour = matches!(
            kind,
            AccessStructureKind::GuidedTour | AccessStructureKind::IndexedGuidedTour
        );
        if with_index {
            for m in members {
                links.push(NavLink {
                    kind: NavLinkKind::IndexEntry,
                    from: NodeRef::Entry,
                    to: NodeRef::Member(m.slug.clone()),
                    label: m.title.clone(),
                });
            }
            for m in members {
                links.push(NavLink {
                    kind: NavLinkKind::UpToIndex,
                    from: NodeRef::Member(m.slug.clone()),
                    to: NodeRef::Entry,
                    label: NavLinkKind::UpToIndex.default_label().to_string(),
                });
            }
        }
        if with_tour {
            if let Some(first) = members.first() {
                links.push(NavLink {
                    kind: NavLinkKind::TourStart,
                    from: NodeRef::Entry,
                    to: NodeRef::Member(first.slug.clone()),
                    label: NavLinkKind::TourStart.default_label().to_string(),
                });
            }
            for pair in members.windows(2) {
                links.push(NavLink {
                    kind: NavLinkKind::Next,
                    from: NodeRef::Member(pair[0].slug.clone()),
                    to: NodeRef::Member(pair[1].slug.clone()),
                    label: NavLinkKind::Next.default_label().to_string(),
                });
                links.push(NavLink {
                    kind: NavLinkKind::Previous,
                    from: NodeRef::Member(pair[1].slug.clone()),
                    to: NodeRef::Member(pair[0].slug.clone()),
                    label: NavLinkKind::Previous.default_label().to_string(),
                });
            }
        }
        AccessGraph {
            kind,
            members: members.to_vec(),
            links,
        }
    }

    /// The structure kind this graph realizes.
    pub fn kind(&self) -> AccessStructureKind {
        self.kind
    }

    /// The ordered members.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// All links, deterministic order.
    pub fn links(&self) -> &[NavLink] {
        &self.links
    }

    /// Links leaving the entry/index page.
    pub fn outgoing_of_entry(&self) -> Vec<&NavLink> {
        self.links
            .iter()
            .filter(|l| l.from == NodeRef::Entry)
            .collect()
    }

    /// Links leaving the member page `slug`.
    pub fn outgoing_of_member(&self, slug: &str) -> Vec<&NavLink> {
        self.links
            .iter()
            .filter(|l| l.from.slug() == Some(slug))
            .collect()
    }

    /// The member following `slug` in tour order, if any.
    pub fn next_of(&self, slug: &str) -> Option<&Member> {
        let pos = self.members.iter().position(|m| m.slug == slug)?;
        self.members.get(pos + 1)
    }

    /// The member preceding `slug` in tour order, if any.
    pub fn prev_of(&self, slug: &str) -> Option<&Member> {
        let pos = self.members.iter().position(|m| m.slug == slug)?;
        pos.checked_sub(1).and_then(|p| self.members.get(p))
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the graph has no links (empty member list under Index).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<Member> {
        (0..n)
            .map(|i| Member::new(format!("m{i}"), format!("Member {i}")))
            .collect()
    }

    #[test]
    fn index_topology() {
        let ms = members(3);
        let g = AccessGraph::build(AccessStructureKind::Index, &ms);
        // N index entries + N up links.
        assert_eq!(g.len(), 6);
        assert_eq!(g.outgoing_of_entry().len(), 3);
        for m in &ms {
            let out = g.outgoing_of_member(&m.slug);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].kind, NavLinkKind::UpToIndex);
        }
        // No next/prev links under plain Index.
        assert!(!g.links().iter().any(|l| l.kind == NavLinkKind::Next));
    }

    #[test]
    fn guided_tour_topology() {
        let ms = members(4);
        let g = AccessGraph::build(AccessStructureKind::GuidedTour, &ms);
        // 1 tour-start + 3 next + 3 prev.
        assert_eq!(g.len(), 7);
        assert_eq!(g.outgoing_of_entry().len(), 1);
        assert_eq!(g.outgoing_of_entry()[0].kind, NavLinkKind::TourStart);
        // Interior member has next + prev.
        let mid = g.outgoing_of_member("m1");
        assert_eq!(mid.len(), 2);
        // No index entries.
        assert!(!g.links().iter().any(|l| l.kind == NavLinkKind::IndexEntry));
    }

    #[test]
    fn indexed_guided_tour_is_union() {
        let ms = members(3);
        let index = AccessGraph::build(AccessStructureKind::Index, &ms);
        let tour = AccessGraph::build(AccessStructureKind::GuidedTour, &ms);
        let igt = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &ms);
        assert_eq!(igt.len(), index.len() + tour.len());
        // Every link of both components appears.
        for l in index.links().iter().chain(tour.links()) {
            assert!(igt.links().contains(l), "missing {l:?}");
        }
    }

    #[test]
    fn the_papers_two_lines() {
        // Fig 3 → Fig 4: the middle painting (Guernica's analogue) gains
        // exactly two links: Next and Previous.
        let ms = vec![
            Member::new("guitar", "Guitar"),
            Member::new("guernica", "Guernica"),
            Member::new("avignon", "Les Demoiselles d'Avignon"),
        ];
        let index = AccessGraph::build(AccessStructureKind::Index, &ms);
        let igt = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &ms);
        let before = index.outgoing_of_member("guernica").len();
        let after = igt.outgoing_of_member("guernica").len();
        assert_eq!(after - before, 2);
    }

    #[test]
    fn next_prev_lookup() {
        let ms = members(3);
        let g = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &ms);
        assert_eq!(g.next_of("m0").unwrap().slug, "m1");
        assert_eq!(g.prev_of("m2").unwrap().slug, "m1");
        assert!(g.prev_of("m0").is_none());
        assert!(g.next_of("m2").is_none());
        assert!(g.next_of("ghost").is_none());
    }

    #[test]
    fn empty_and_singleton_member_lists() {
        let g = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &[]);
        assert!(g.is_empty());
        let one = [Member::new("only", "Only")];
        let g = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &one);
        // index entry + up + tour start; no next/prev.
        assert_eq!(g.len(), 3);
        assert!(!g.links().iter().any(|l| l.kind == NavLinkKind::Next));
    }

    #[test]
    fn arcrole_round_trip() {
        for kind in [
            NavLinkKind::IndexEntry,
            NavLinkKind::Next,
            NavLinkKind::Previous,
            NavLinkKind::UpToIndex,
            NavLinkKind::TourStart,
        ] {
            assert_eq!(NavLinkKind::from_arcrole(kind.arcrole()), Some(kind));
        }
        assert_eq!(NavLinkKind::from_arcrole("urn:other"), None);
    }

    #[test]
    fn index_entry_labels_use_member_titles() {
        let ms = members(2);
        let g = AccessGraph::build(AccessStructureKind::Index, &ms);
        let entries = g.outgoing_of_entry();
        assert_eq!(entries[0].label, "Member 0");
        assert_eq!(entries[1].label, "Member 1");
    }
}
