//! Route-style specifications over navigational contexts.
//!
//! "Semantic Navigation on the Web of Data" (Fionda et al.) specifies
//! navigation declaratively: a *route expression* names which traversals
//! are legitimate, and an engine evaluates it against the link graph. This
//! module brings that idea to the paper's navigational layer: a
//! [`RouteSpec`] is a small regular expression over traversal steps
//! (`next`, `prev`, `first`, `last`, `any`, or a member slug), compiled
//! against a [`NavigationalContext`] into a [`CompiledRoute`] — an
//! automaton whose states answer, at every point of a session, *which
//! next hops are allowed*.
//!
//! The navigation-history subsystem (`navsep-web`'s `history` module)
//! checks each link traversal against a compiled route, making route
//! conformance an observable session property rather than documentation.
//!
//! # Grammar
//!
//! ```text
//! route := seq ("|" seq)*          alternation
//! seq   := step ("/" step)*        sequencing
//! step  := atom ("*" | "+" | "?")? quantifiers
//! atom  := "next" | "prev" | "first" | "last" | "any"
//!        | "(" route ")" | slug    a literal member slug
//! ```
//!
//! # Examples
//!
//! ```
//! use navsep_hypermodel::{AccessStructureKind, Member, NavigationalContext, RouteSpec};
//!
//! let ctx = NavigationalContext::new(
//!     "by-painter:picasso",
//!     "Pablo Picasso",
//!     vec![
//!         Member::new("guitar", "Guitar"),
//!         Member::new("guernica", "Guernica"),
//!         Member::new("avignon", "Les Demoiselles d'Avignon"),
//!     ],
//!     AccessStructureKind::GuidedTour,
//! )?;
//!
//! // A guided tour: start anywhere, then only `next` hops.
//! let route = RouteSpec::parse("any/next*")?.compile(&ctx);
//! let mut state = route.start();
//! state = route.step(&state, "guitar", "guernica").expect("next is allowed");
//! assert!(route.step(&state, "guernica", "guitar").is_none(), "going back violates the route");
//! assert_eq!(
//!     route.allowed_next(&state, "guernica").into_iter().collect::<Vec<_>>(),
//!     ["avignon"]
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::context::NavigationalContext;
use std::collections::BTreeSet;
use std::error::Error as StdError;
use std::fmt;

/// A malformed route expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The expression (or a parenthesized group) was empty.
    Empty,
    /// A token that cannot start or continue an expression at this point.
    Unexpected(String),
    /// A `(` without its `)`.
    UnbalancedParen,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Empty => f.write_str("empty route expression"),
            RouteError::Unexpected(t) => write!(f, "unexpected token {t:?} in route expression"),
            RouteError::UnbalancedParen => {
                f.write_str("unbalanced parenthesis in route expression")
            }
        }
    }
}

impl StdError for RouteError {}

/// One traversal step of a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteStep {
    /// The context successor of the current member.
    Next,
    /// The context predecessor of the current member.
    Prev,
    /// The first member of the context (allowed from anywhere).
    First,
    /// The last member of the context (allowed from anywhere).
    Last,
    /// Any member of the context (allowed from anywhere).
    Any,
    /// A specific member, by slug (allowed from anywhere).
    To(String),
}

/// Parsed route AST.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ast {
    Step(RouteStep),
    Seq(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Slash,
    Pipe,
    Open,
    Close,
    Star,
    Plus,
    Question,
}

fn lex(text: &str) -> Result<Vec<Token>, RouteError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' => {
                chars.next();
            }
            '/' => {
                chars.next();
                out.push(Token::Slash);
            }
            '|' => {
                chars.next();
                out.push(Token::Pipe);
            }
            '(' => {
                chars.next();
                out.push(Token::Open);
            }
            ')' => {
                chars.next();
                out.push(Token::Close);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '?' => {
                chars.next();
                out.push(Token::Question);
            }
            c if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(ident));
            }
            other => return Err(RouteError::Unexpected(other.to_string())),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    /// route := seq ("|" seq)*
    fn route(&mut self) -> Result<Ast, RouteError> {
        let mut alts = vec![self.seq()?];
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            alts.push(self.seq()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one alternative")
        } else {
            Ast::Alt(alts)
        })
    }

    /// seq := step ("/" step)*
    fn seq(&mut self) -> Result<Ast, RouteError> {
        let mut steps = vec![self.step()?];
        while self.peek() == Some(&Token::Slash) {
            self.bump();
            steps.push(self.step()?);
        }
        Ok(if steps.len() == 1 {
            steps.pop().expect("one step")
        } else {
            Ast::Seq(steps)
        })
    }

    /// step := atom quantifier?
    fn step(&mut self) -> Result<Ast, RouteError> {
        let atom = self.atom()?;
        Ok(match self.peek() {
            Some(Token::Star) => {
                self.bump();
                Ast::Star(Box::new(atom))
            }
            Some(Token::Plus) => {
                self.bump();
                Ast::Plus(Box::new(atom))
            }
            Some(Token::Question) => {
                self.bump();
                Ast::Opt(Box::new(atom))
            }
            _ => atom,
        })
    }

    fn atom(&mut self) -> Result<Ast, RouteError> {
        match self.bump() {
            Some(Token::Ident(word)) => Ok(Ast::Step(match word.as_str() {
                "next" => RouteStep::Next,
                "prev" => RouteStep::Prev,
                "first" => RouteStep::First,
                "last" => RouteStep::Last,
                "any" => RouteStep::Any,
                _ => RouteStep::To(word),
            })),
            Some(Token::Open) => {
                let inner = self.route()?;
                match self.bump() {
                    Some(Token::Close) => Ok(inner),
                    _ => Err(RouteError::UnbalancedParen),
                }
            }
            Some(other) => Err(RouteError::Unexpected(format!("{other:?}"))),
            None => Err(RouteError::Empty),
        }
    }
}

/// A parsed route expression, ready to compile against any context.
///
/// Parsing and compilation are separated so one spec can guard many
/// contexts (the same "guided tour" route applies to every `by-painter`
/// context, say).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    ast: Ast,
    source: String,
}

impl RouteSpec {
    /// Parses `text` (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`RouteError`] on empty input, stray tokens, or unbalanced parens.
    pub fn parse(text: &str) -> Result<Self, RouteError> {
        let tokens = lex(text)?;
        if tokens.is_empty() {
            return Err(RouteError::Empty);
        }
        let mut parser = Parser { tokens, at: 0 };
        let ast = parser.route()?;
        if let Some(extra) = parser.peek() {
            return Err(RouteError::Unexpected(format!("{extra:?}")));
        }
        Ok(RouteSpec {
            ast,
            source: text.to_string(),
        })
    }

    /// The original expression text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Compiles the spec against `ctx` into an automaton over its member
    /// order (Thompson construction; states track which part of the route
    /// the session is in).
    pub fn compile(&self, ctx: &NavigationalContext) -> CompiledRoute {
        let mut nfa = Nfa::new();
        let start = nfa.state();
        let accept = nfa.state();
        nfa.build(&self.ast, start, accept);
        CompiledRoute {
            members: ctx.members.iter().map(|m| m.slug.clone()).collect(),
            nfa,
            start,
            accept,
        }
    }
}

/// Thompson-construction NFA: epsilon edges plus step-labelled edges.
#[derive(Debug, Clone)]
struct Nfa {
    eps: Vec<Vec<usize>>,
    steps: Vec<Vec<(RouteStep, usize)>>,
}

impl Nfa {
    fn new() -> Self {
        Nfa {
            eps: Vec::new(),
            steps: Vec::new(),
        }
    }

    fn state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        self.eps.len() - 1
    }

    /// Wires `ast` as a fragment from `from` to `to`.
    fn build(&mut self, ast: &Ast, from: usize, to: usize) {
        match ast {
            Ast::Step(step) => self.steps[from].push((step.clone(), to)),
            Ast::Seq(parts) => {
                let mut at = from;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.state()
                    };
                    self.build(part, at, next);
                    at = next;
                }
            }
            Ast::Alt(alts) => {
                for alt in alts {
                    self.build(alt, from, to);
                }
            }
            Ast::Star(inner) => {
                let hub = self.state();
                self.eps[from].push(hub);
                self.eps[hub].push(to);
                self.build(inner, hub, hub);
            }
            Ast::Plus(inner) => {
                let hub = self.state();
                self.build(inner, from, hub);
                self.eps[hub].push(to);
                self.build(inner, hub, hub);
            }
            Ast::Opt(inner) => {
                self.eps[from].push(to);
                self.build(inner, from, to);
            }
        }
    }

    fn closure(&self, seed: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut set: BTreeSet<usize> = seed.into_iter().collect();
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &e in &self.eps[s] {
                if set.insert(e) {
                    stack.push(e);
                }
            }
        }
        set
    }
}

/// Where a session currently is inside a route: the set of live automaton
/// states (epsilon-closed).
pub type RouteState = BTreeSet<usize>;

/// A [`RouteSpec`] compiled against one context: answers which next hops
/// are allowed from a page, and advances as the session traverses.
#[derive(Debug, Clone)]
pub struct CompiledRoute {
    members: Vec<String>,
    nfa: Nfa,
    start: usize,
    accept: usize,
}

impl CompiledRoute {
    /// The initial route state (before any hop).
    pub fn start(&self) -> RouteState {
        self.nfa.closure([self.start])
    }

    /// `true` when the route accepts ending here.
    pub fn is_accepting(&self, state: &RouteState) -> bool {
        state.contains(&self.accept)
    }

    /// The member slugs of the compiled context, in context order.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The targets `step` permits when standing on `from`.
    fn targets_of(&self, step: &RouteStep, from: &str) -> Vec<&str> {
        let position = self.members.iter().position(|m| m == from);
        match step {
            RouteStep::Next => position
                .and_then(|p| self.members.get(p + 1))
                .map(|m| vec![m.as_str()])
                .unwrap_or_default(),
            RouteStep::Prev => position
                .and_then(|p| p.checked_sub(1))
                .and_then(|p| self.members.get(p))
                .map(|m| vec![m.as_str()])
                .unwrap_or_default(),
            RouteStep::First => self
                .members
                .first()
                .map(|m| vec![m.as_str()])
                .unwrap_or_default(),
            RouteStep::Last => self
                .members
                .last()
                .map(|m| vec![m.as_str()])
                .unwrap_or_default(),
            RouteStep::Any => self.members.iter().map(String::as_str).collect(),
            RouteStep::To(slug) => self
                .members
                .iter()
                .filter(|m| *m == slug)
                .map(String::as_str)
                .collect(),
        }
    }

    /// The **allowed next-hop set** from `from` in `state`: every member
    /// some live route step permits as the next traversal target.
    pub fn allowed_next(&self, state: &RouteState, from: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for &s in state {
            for (step, _) in &self.nfa.steps[s] {
                for target in self.targets_of(step, from) {
                    out.insert(target.to_string());
                }
            }
        }
        out
    }

    /// Advances the route over a hop `from → to`. Returns the successor
    /// state, or `None` when no live step permits that hop (a route
    /// violation — the state is unchanged and can be retried).
    pub fn step(&self, state: &RouteState, from: &str, to: &str) -> Option<RouteState> {
        let mut seed = Vec::new();
        for &s in state {
            for (step, target_state) in &self.nfa.steps[s] {
                if self.targets_of(step, from).contains(&to) {
                    seed.push(*target_state);
                }
            }
        }
        if seed.is_empty() {
            None
        } else {
            Some(self.nfa.closure(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessStructureKind, Member};

    fn tour() -> NavigationalContext {
        NavigationalContext::new(
            "by-painter:picasso",
            "Pablo Picasso",
            vec![
                Member::new("guitar", "Guitar"),
                Member::new("guernica", "Guernica"),
                Member::new("avignon", "Les Demoiselles d'Avignon"),
            ],
            AccessStructureKind::GuidedTour,
        )
        .unwrap()
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(RouteSpec::parse(""), Err(RouteError::Empty));
        assert_eq!(RouteSpec::parse("   "), Err(RouteError::Empty));
        assert!(matches!(
            RouteSpec::parse("(next"),
            Err(RouteError::UnbalancedParen)
        ));
        assert!(matches!(
            RouteSpec::parse("next//prev"),
            Err(RouteError::Unexpected(_))
        ));
        assert!(matches!(
            RouteSpec::parse("next)"),
            Err(RouteError::Unexpected(_))
        ));
        assert!(matches!(
            RouteSpec::parse("next%"),
            Err(RouteError::Unexpected(_))
        ));
    }

    #[test]
    fn guided_tour_route_allows_only_successors() {
        let route = RouteSpec::parse("any/next*").unwrap().compile(&tour());
        let state = route.start();
        // First hop: `any` admits every member.
        assert_eq!(route.allowed_next(&state, "outside").len(), 3);
        let state = route.step(&state, "outside", "guitar").unwrap();
        // From then on, only the context successor.
        assert_eq!(
            route.allowed_next(&state, "guitar"),
            BTreeSet::from(["guernica".to_string()])
        );
        assert!(route.step(&state, "guitar", "avignon").is_none());
        let state = route.step(&state, "guitar", "guernica").unwrap();
        let state = route.step(&state, "guernica", "avignon").unwrap();
        // Last member: nothing further is allowed.
        assert!(route.allowed_next(&state, "avignon").is_empty());
        assert!(route.is_accepting(&state));
    }

    #[test]
    fn alternation_and_literals() {
        let route = RouteSpec::parse("first/(next|prev)*|guernica")
            .unwrap()
            .compile(&tour());
        let state = route.start();
        // Both alternatives are live: jump straight to guernica…
        assert!(route.allowed_next(&state, "anywhere").contains("guernica"));
        let jumped = route.step(&state, "anywhere", "guernica").unwrap();
        assert!(route.is_accepting(&jumped));
        // …or take `first` and wander with next/prev.
        let state = route.step(&state, "anywhere", "guitar").unwrap();
        let state = route.step(&state, "guitar", "guernica").unwrap();
        let state = route.step(&state, "guernica", "guitar").unwrap();
        assert!(route.is_accepting(&state));
    }

    #[test]
    fn plus_requires_at_least_one_hop() {
        let route = RouteSpec::parse("first/next+").unwrap().compile(&tour());
        let state = route.start();
        let state = route.step(&state, "x", "guitar").unwrap();
        assert!(!route.is_accepting(&state), "next+ needs one hop");
        let state = route.step(&state, "guitar", "guernica").unwrap();
        assert!(route.is_accepting(&state));
        let state = route.step(&state, "guernica", "avignon").unwrap();
        assert!(route.is_accepting(&state));
    }

    #[test]
    fn optional_step() {
        let route = RouteSpec::parse("first/next?/last")
            .unwrap()
            .compile(&tour());
        let state = route.start();
        let state = route.step(&state, "x", "guitar").unwrap();
        // Skip the optional next and go straight to last.
        assert!(route.allowed_next(&state, "guitar").contains("avignon"));
        // Or take it.
        let state = route.step(&state, "guitar", "guernica").unwrap();
        let state = route.step(&state, "guernica", "avignon").unwrap();
        assert!(route.is_accepting(&state));
    }

    #[test]
    fn prev_at_first_member_is_dead() {
        let route = RouteSpec::parse("any/prev").unwrap().compile(&tour());
        let state = route.start();
        let state = route.step(&state, "x", "guitar").unwrap();
        assert!(route.allowed_next(&state, "guitar").is_empty());
        assert!(route.step(&state, "guitar", "guernica").is_none());
    }

    #[test]
    fn literal_outside_context_never_matches() {
        let route = RouteSpec::parse("any/matisse").unwrap().compile(&tour());
        let state = route.start();
        let state = route.step(&state, "x", "guitar").unwrap();
        assert!(route.allowed_next(&state, "guitar").is_empty());
    }

    #[test]
    fn spec_reuse_across_contexts() {
        let spec = RouteSpec::parse("first/next*").unwrap();
        assert_eq!(spec.source(), "first/next*");
        let small = NavigationalContext::new(
            "by-painter:braque",
            "Georges Braque",
            vec![Member::new("violin", "Violin and Candlestick")],
            AccessStructureKind::GuidedTour,
        )
        .unwrap();
        let a = spec.compile(&tour());
        let b = spec.compile(&small);
        assert_eq!(a.members().len(), 3);
        assert_eq!(b.members().len(), 1);
        let state = b.start();
        assert_eq!(
            b.allowed_next(&state, "x"),
            BTreeSet::from(["violin".to_string()])
        );
    }
}
