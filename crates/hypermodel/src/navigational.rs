//! The navigational schema: node and link classes as *views* over the
//! conceptual model.
//!
//! OOHDM's second phase defines navigation objects as customized views of
//! conceptual objects — "nodes (views of the conceptual classes)" and "links
//! (views of the relationships)" in the paper's §4. A [`NavigationalSchema`]
//! names which classes become page-producing node classes (and which of
//! their attributes are shown) and which relationships become link classes.

use crate::conceptual::{ConceptualObject, InstanceStore};
use crate::error::ModelError;

/// A node class: a view over one conceptual class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeClass {
    /// Node class name (often the conceptual class name).
    pub name: String,
    /// The conceptual class this node class views.
    pub from_class: String,
    /// Which attribute supplies the page title.
    pub title_attribute: String,
    /// Attributes exposed on the node (subset of the class's attributes).
    pub shown_attributes: Vec<String>,
}

/// A link class: a view over one conceptual relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkClass {
    /// Link class name.
    pub name: String,
    /// The relationship this link class views.
    pub from_relationship: String,
}

/// The navigational schema: which views exist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NavigationalSchema {
    node_classes: Vec<NodeClass>,
    link_classes: Vec<LinkClass>,
}

impl NavigationalSchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a node class viewing `from_class`, titled by
    /// `title_attribute`, exposing `shown_attributes`.
    pub fn node_class(
        mut self,
        name: &str,
        from_class: &str,
        title_attribute: &str,
        shown_attributes: &[&str],
    ) -> Self {
        self.node_classes.push(NodeClass {
            name: name.to_string(),
            from_class: from_class.to_string(),
            title_attribute: title_attribute.to_string(),
            shown_attributes: shown_attributes.iter().map(|s| (*s).to_string()).collect(),
        });
        self
    }

    /// Declares a link class viewing `from_relationship`.
    pub fn link_class(mut self, name: &str, from_relationship: &str) -> Self {
        self.link_classes.push(LinkClass {
            name: name.to_string(),
            from_relationship: from_relationship.to_string(),
        });
        self
    }

    /// The node classes.
    pub fn node_classes(&self) -> &[NodeClass] {
        &self.node_classes
    }

    /// The link classes.
    pub fn link_classes(&self) -> &[LinkClass] {
        &self.link_classes
    }

    /// Looks up a node class by name.
    pub fn node_class_named(&self, name: &str) -> Option<&NodeClass> {
        self.node_classes.iter().find(|n| n.name == name)
    }

    /// Derives the navigation nodes of `node_class` from the instance store.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownClass`] when the node class views a class the
    ///   store's schema lacks;
    /// * [`ModelError::UnknownAttribute`] when the title or a shown
    ///   attribute is not declared on that class.
    pub fn derive_nodes(
        &self,
        node_class: &str,
        store: &InstanceStore,
    ) -> Result<Vec<NavNode>, ModelError> {
        let nc = self
            .node_class_named(node_class)
            .ok_or_else(|| ModelError::UnknownClass(node_class.to_string()))?;
        let class_def = store
            .schema()
            .class_def(&nc.from_class)
            .ok_or_else(|| ModelError::UnknownClass(nc.from_class.clone()))?;
        let check_attr = |a: &str| -> Result<(), ModelError> {
            if class_def.attributes.iter().any(|d| d.name == a) {
                Ok(())
            } else {
                Err(ModelError::UnknownAttribute {
                    class: nc.from_class.clone(),
                    attribute: a.to_string(),
                })
            }
        };
        check_attr(&nc.title_attribute)?;
        for a in &nc.shown_attributes {
            check_attr(a)?;
        }
        Ok(store
            .objects_of_class(&nc.from_class)
            .map(|o| NavNode::from_object(nc, o))
            .collect())
    }
}

/// A derived navigation node: one page-to-be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavNode {
    /// Page slug (the conceptual object's id).
    pub slug: String,
    /// The node class that produced this node.
    pub node_class: String,
    /// Display title (value of the class's title attribute).
    pub title: String,
    /// Exposed `(attribute, value)` pairs, in declaration order.
    pub attributes: Vec<(String, String)>,
}

impl NavNode {
    fn from_object(nc: &NodeClass, obj: &ConceptualObject) -> Self {
        NavNode {
            slug: obj.id().as_str().to_string(),
            node_class: nc.name.clone(),
            title: obj
                .attribute(&nc.title_attribute)
                .unwrap_or(obj.id().as_str())
                .to_string(),
            attributes: nc
                .shown_attributes
                .iter()
                .filter_map(|a| obj.attribute(a).map(|v| (a.clone(), v.to_string())))
                .collect(),
        }
    }

    /// Value of a shown attribute.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conceptual::{Cardinality, ConceptualSchema};

    fn store() -> InstanceStore {
        let schema = ConceptualSchema::new()
            .class("Painter", &["name", "born"])
            .class("Painting", &["title", "year", "technique"])
            .relationship("painted", "Painter", "Painting", Cardinality::Many);
        let mut s = InstanceStore::new(schema);
        s.create(
            "picasso",
            "Painter",
            &[("name", "Pablo Picasso"), ("born", "1881")],
        )
        .unwrap();
        s.create(
            "guitar",
            "Painting",
            &[("title", "Guitar"), ("year", "1913"), ("technique", "oil")],
        )
        .unwrap();
        s.create(
            "guernica",
            "Painting",
            &[("title", "Guernica"), ("year", "1937")],
        )
        .unwrap();
        s.link("painted", "picasso", "guitar").unwrap();
        s.link("painted", "picasso", "guernica").unwrap();
        s
    }

    fn nav_schema() -> NavigationalSchema {
        NavigationalSchema::new()
            .node_class("PainterNode", "Painter", "name", &["name", "born"])
            .node_class("PaintingNode", "Painting", "title", &["title", "year"])
            .link_class("WorksOf", "painted")
    }

    #[test]
    fn derives_nodes_as_views() {
        let nodes = nav_schema().derive_nodes("PaintingNode", &store()).unwrap();
        assert_eq!(nodes.len(), 2);
        let guitar = &nodes[0];
        assert_eq!(guitar.slug, "guitar");
        assert_eq!(guitar.title, "Guitar");
        assert_eq!(guitar.attribute("year"), Some("1913"));
        // "technique" exists on the class but is NOT part of the view.
        assert_eq!(guitar.attribute("technique"), None);
    }

    #[test]
    fn missing_shown_attribute_skipped_per_object() {
        // guernica has no technique/born etc. — only declared-but-missing
        // values are skipped, not an error.
        let nodes = nav_schema().derive_nodes("PaintingNode", &store()).unwrap();
        let guernica = &nodes[1];
        assert_eq!(guernica.attribute("year"), Some("1937"));
    }

    #[test]
    fn unknown_node_class_is_error() {
        assert!(matches!(
            nav_schema().derive_nodes("SculptureNode", &store()),
            Err(ModelError::UnknownClass(_))
        ));
    }

    #[test]
    fn undeclared_attribute_is_error() {
        let schema = NavigationalSchema::new().node_class(
            "PaintingNode",
            "Painting",
            "smell", // not a Painting attribute
            &[],
        );
        assert!(matches!(
            schema.derive_nodes("PaintingNode", &store()),
            Err(ModelError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn title_falls_back_to_slug() {
        let schema = ConceptualSchema::new().class("Thing", &["label"]);
        let mut s = InstanceStore::new(schema);
        s.create("t1", "Thing", &[]).unwrap();
        let nav = NavigationalSchema::new().node_class("ThingNode", "Thing", "label", &[]);
        let nodes = nav.derive_nodes("ThingNode", &s).unwrap();
        assert_eq!(nodes[0].title, "t1");
    }

    #[test]
    fn link_classes_recorded() {
        let s = nav_schema();
        assert_eq!(s.link_classes().len(), 1);
        assert_eq!(s.link_classes()[0].from_relationship, "painted");
    }
}
