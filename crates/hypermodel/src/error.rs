//! Errors for the hypermedia design model.

use std::error::Error as StdError;
use std::fmt;

/// A violation of the conceptual or navigational schema.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// Reference to a class the schema does not define.
    UnknownClass(String),
    /// Reference to a relationship the schema does not define.
    UnknownRelationship(String),
    /// Reference to an object id that does not exist.
    UnknownObject(String),
    /// An attribute not declared on the object's class.
    UnknownAttribute {
        /// The class name.
        class: String,
        /// The undeclared attribute.
        attribute: String,
    },
    /// A link whose endpoints disagree with the relationship definition.
    BadLink {
        /// The relationship name.
        relationship: String,
        /// Explanation of the mismatch.
        reason: String,
    },
    /// Two objects were created with the same id.
    DuplicateObject(String),
    /// A navigational context is empty or malformed.
    InvalidContext(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownClass(c) => write!(f, "unknown class {c:?}"),
            ModelError::UnknownRelationship(r) => write!(f, "unknown relationship {r:?}"),
            ModelError::UnknownObject(o) => write!(f, "unknown object {o:?}"),
            ModelError::UnknownAttribute { class, attribute } => {
                write!(f, "class {class:?} has no attribute {attribute:?}")
            }
            ModelError::BadLink {
                relationship,
                reason,
            } => write!(f, "bad {relationship:?} link: {reason}"),
            ModelError::DuplicateObject(o) => write!(f, "duplicate object id {o:?}"),
            ModelError::InvalidContext(m) => write!(f, "invalid navigational context: {m}"),
        }
    }
}

impl StdError for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            ModelError::UnknownClass("Painter".into()).to_string(),
            "unknown class \"Painter\""
        );
        assert!(ModelError::UnknownAttribute {
            class: "Painting".into(),
            attribute: "smell".into()
        }
        .to_string()
        .contains("smell"));
    }
}
