//! Property-based tests for the conceptual instance store.

use navsep_hypermodel::{Cardinality, ConceptualSchema, InstanceStore};
use proptest::prelude::*;

fn schema() -> ConceptualSchema {
    ConceptualSchema::new()
        .class("Group", &["name"])
        .class("Item", &["title"])
        .relationship("holds", "Group", "Item", Cardinality::Many)
}

proptest! {
    /// `related` and `related_to` are dual: x ∈ related(g) ⟺ g ∈ related_to(x).
    #[test]
    fn related_and_related_to_are_dual(
        groups in 1usize..4,
        items in 1usize..6,
        links in proptest::collection::vec((0usize..4, 0usize..6), 0..12),
    ) {
        let mut store = InstanceStore::new(schema());
        for g in 0..groups {
            store.create(format!("g{g}"), "Group", &[("name", "G")]).unwrap();
        }
        for i in 0..items {
            store.create(format!("i{i}"), "Item", &[("title", "T")]).unwrap();
        }
        for (g, i) in links {
            let g = g % groups;
            let i = i % items;
            store.link("holds", format!("g{g}"), format!("i{i}")).unwrap();
        }
        for g in 0..groups {
            let forward = store.related(format!("g{g}"), "holds").unwrap();
            for item in &forward {
                let reverse = store.related_to(item.id().clone(), "holds").unwrap();
                let group_id = format!("g{g}");
                let item_id = item.id().to_string();
                prop_assert!(
                    reverse.iter().any(|o| o.id().as_str() == group_id),
                    "duality violated for {} -> {}",
                    group_id,
                    item_id
                );
            }
        }
        for i in 0..items {
            let item_id = format!("i{i}");
            let reverse = store.related_to(item_id.as_str(), "holds").unwrap();
            for group in &reverse {
                let forward = store.related(group.id().clone(), "holds").unwrap();
                prop_assert!(forward.iter().any(|o| o.id().as_str() == item_id));
            }
        }
    }

    /// Link order is preserved: related() returns targets in insertion order.
    #[test]
    fn link_order_preserved(n in 1usize..8) {
        let mut store = InstanceStore::new(schema());
        store.create("g", "Group", &[]).unwrap();
        for i in 0..n {
            store.create(format!("i{i}"), "Item", &[]).unwrap();
        }
        // Link in reverse order; related() must reflect exactly that.
        for i in (0..n).rev() {
            store.link("holds", "g", format!("i{i}")).unwrap();
        }
        let related = store.related("g", "holds").unwrap();
        let ids: Vec<String> = related.iter().map(|o| o.id().to_string()).collect();
        let expected: Vec<String> = (0..n).rev().map(|i| format!("i{i}")).collect();
        prop_assert_eq!(ids, expected);
    }

    /// Object count equals creations; duplicate ids always rejected.
    #[test]
    fn creation_count_and_duplicates(ids in proptest::collection::vec("[a-d]{1,2}", 1..12)) {
        let mut store = InstanceStore::new(schema());
        let mut unique = std::collections::BTreeSet::new();
        for id in &ids {
            let fresh = unique.insert(id.clone());
            let result = store.create(id.as_str(), "Item", &[]);
            prop_assert_eq!(result.is_ok(), fresh);
        }
        prop_assert_eq!(store.len(), unique.len());
    }
}
