//! Errors for XPointer parsing and evaluation.

use std::error::Error as StdError;
use std::fmt;

/// Failure to parse an XPointer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePointerError {
    message: String,
    /// Byte offset into the pointer string where parsing failed.
    offset: usize,
}

impl ParsePointerError {
    /// Creates a parse error at byte `offset` in the pointer text.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParsePointerError {
            message: message.into(),
            offset,
        }
    }

    /// Human-readable reason for the failure.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the pointer string.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParsePointerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid xpointer at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl StdError for ParsePointerError {}

/// Failure to evaluate a (well-formed) pointer against a document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalPointerError {
    /// No scheme part of the pointer produced any location.
    NoMatch(String),
    /// The pointer used a scheme this engine does not implement.
    UnsupportedScheme(String),
}

impl fmt::Display for EvalPointerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalPointerError::NoMatch(ptr) => {
                write!(f, "pointer {ptr:?} selects nothing in this document")
            }
            EvalPointerError::UnsupportedScheme(name) => {
                write!(f, "unsupported xpointer scheme {name:?}")
            }
        }
    }
}

impl StdError for EvalPointerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display() {
        let e = ParsePointerError::new("expected ')'", 7);
        assert_eq!(e.to_string(), "invalid xpointer at offset 7: expected ')'");
        assert_eq!(e.offset(), 7);
    }

    #[test]
    fn eval_error_display() {
        assert!(EvalPointerError::NoMatch("foo".into())
            .to_string()
            .contains("selects nothing"));
        assert!(EvalPointerError::UnsupportedScheme("xmlns".into())
            .to_string()
            .contains("unsupported"));
    }
}
