//! Parser for XPointer expressions.

use crate::ast::{
    Axis, ElementScheme, LocationPath, NodeTest, Pointer, Predicate, SchemePart, Step,
};
use crate::error::ParsePointerError;

/// Parses a pointer string (the fragment part of an `xlink:href`).
///
/// # Errors
///
/// Returns [`ParsePointerError`] with a byte offset when the expression is
/// malformed.
///
/// # Examples
///
/// ```
/// use navsep_xpointer::{parse, Pointer};
///
/// assert!(matches!(parse("guitar")?, Pointer::Shorthand(_)));
/// let p = parse("element(picasso/1/2)")?;
/// assert_eq!(p.to_string(), "element(picasso/1/2)");
/// let x = parse("xpointer(/museum/painting[@id='guitar'])")?;
/// assert_eq!(x.to_string(), "xpointer(/museum/painting[@id='guitar'])");
/// # Ok::<(), navsep_xpointer::ParsePointerError>(())
/// ```
pub fn parse(input: &str) -> Result<Pointer, ParsePointerError> {
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Err(ParsePointerError::new("empty pointer", 0));
    }
    // Shorthand: a bare NCName (no parentheses, no slash).
    if !trimmed.contains('(') {
        if is_ncname(trimmed) {
            return Ok(Pointer::Shorthand(trimmed.to_string()));
        }
        return Err(ParsePointerError::new(
            format!("{trimmed:?} is not a valid shorthand pointer"),
            0,
        ));
    }
    let mut parts = Vec::new();
    let mut cursor = Cursor::new(trimmed);
    while !cursor.at_end() {
        cursor.skip_ws();
        if cursor.at_end() {
            break;
        }
        let name = cursor.take_ncname()?;
        cursor.expect('(')?;
        let data = cursor.take_until_balanced_close()?;
        let part = match name.as_str() {
            "element" => SchemePart::Element(parse_element_scheme(&data, cursor.base_offset())?),
            "xpointer" => SchemePart::XPointer(parse_location_path(&data, cursor.base_offset())?),
            _ => SchemePart::Unknown { name, data },
        };
        parts.push(part);
    }
    if parts.is_empty() {
        return Err(ParsePointerError::new("no scheme parts", 0));
    }
    Ok(Pointer::Schemes(parts))
}

/// Parses just the body of an `element()` scheme, e.g. `picasso/1/2` or `/1`.
pub fn parse_element_scheme(data: &str, offset: usize) -> Result<ElementScheme, ParsePointerError> {
    let data = data.trim();
    if data.is_empty() {
        return Err(ParsePointerError::new("empty element() scheme", offset));
    }
    let (start_id, rest) = if let Some(stripped) = data.strip_prefix('/') {
        (None, format!("/{stripped}"))
    } else {
        match data.find('/') {
            Some(idx) => (Some(data[..idx].to_string()), data[idx..].to_string()),
            None => (Some(data.to_string()), String::new()),
        }
    };
    if let Some(id) = &start_id {
        if !is_ncname(id) {
            return Err(ParsePointerError::new(
                format!("invalid NCName {id:?} in element() scheme"),
                offset,
            ));
        }
    }
    let mut child_sequence = Vec::new();
    if !rest.is_empty() {
        for seg in rest.trim_start_matches('/').split('/') {
            let n: usize = seg.parse().map_err(|_| {
                ParsePointerError::new(
                    format!("child sequence step {seg:?} is not a positive integer"),
                    offset,
                )
            })?;
            if n == 0 {
                return Err(ParsePointerError::new(
                    "child sequence steps are 1-based; 0 is invalid",
                    offset,
                ));
            }
            child_sequence.push(n);
        }
    }
    if start_id.is_none() && child_sequence.is_empty() {
        return Err(ParsePointerError::new("element() selects nothing", offset));
    }
    Ok(ElementScheme {
        start_id,
        child_sequence,
    })
}

/// Parses the body of an `xpointer()` scheme as a location path.
pub fn parse_location_path(data: &str, offset: usize) -> Result<LocationPath, ParsePointerError> {
    let mut c = Cursor::with_offset(data.trim(), offset);
    let path = location_path(&mut c)?;
    c.skip_ws();
    if !c.at_end() {
        return Err(ParsePointerError::new(
            format!("trailing input {:?} after location path", c.rest()),
            c.abs_pos(),
        ));
    }
    Ok(path)
}

fn location_path(c: &mut Cursor<'_>) -> Result<LocationPath, ParsePointerError> {
    let mut steps = Vec::new();
    let mut absolute = false;
    if c.eat_str("//") {
        absolute = true;
        steps.push(descendant_or_self_step());
        steps.push(step(c)?);
    } else if c.eat('/') {
        absolute = true;
        if !c.at_end() {
            steps.push(step(c)?);
        }
    } else {
        steps.push(step(c)?);
    }
    loop {
        if c.eat_str("//") {
            steps.push(descendant_or_self_step());
            steps.push(step(c)?);
        } else if c.eat('/') {
            steps.push(step(c)?);
        } else {
            break;
        }
    }
    Ok(LocationPath { absolute, steps })
}

fn descendant_or_self_step() -> Step {
    Step {
        axis: Axis::DescendantOrSelf,
        node_test: NodeTest::AnyNode,
        predicates: vec![],
    }
}

fn step(c: &mut Cursor<'_>) -> Result<Step, ParsePointerError> {
    c.skip_ws();
    // Abbreviations first.
    if c.eat_str("..") {
        return Ok(Step {
            axis: Axis::Parent,
            node_test: NodeTest::AnyNode,
            predicates: predicates(c)?,
        });
    }
    if c.peek() == Some('.') {
        c.eat('.');
        return Ok(Step {
            axis: Axis::SelfAxis,
            node_test: NodeTest::AnyNode,
            predicates: predicates(c)?,
        });
    }
    let axis = if c.eat('@') || c.eat_str("attribute::") {
        Axis::Attribute
    } else if c.eat_str("child::") {
        Axis::Child
    } else if c.eat_str("descendant-or-self::") {
        Axis::DescendantOrSelf
    } else if c.eat_str("self::") {
        Axis::SelfAxis
    } else if c.eat_str("parent::") {
        Axis::Parent
    } else {
        Axis::Child
    };
    let node_test = node_test(c)?;
    let predicates = predicates(c)?;
    Ok(Step {
        axis,
        node_test,
        predicates,
    })
}

fn node_test(c: &mut Cursor<'_>) -> Result<NodeTest, ParsePointerError> {
    if c.eat('*') {
        return Ok(NodeTest::Wildcard);
    }
    if c.eat_str("text()") {
        return Ok(NodeTest::Text);
    }
    if c.eat_str("node()") {
        return Ok(NodeTest::AnyNode);
    }
    let name = c.take_ncname()?;
    Ok(NodeTest::Name(name))
}

fn predicates(c: &mut Cursor<'_>) -> Result<Vec<Predicate>, ParsePointerError> {
    let mut out = Vec::new();
    while c.eat('[') {
        c.skip_ws();
        let p = if c.eat_str("last()") {
            Predicate::Last
        } else if c.peek().map(|ch| ch.is_ascii_digit()).unwrap_or(false) {
            let n = c.take_integer()?;
            if n == 0 {
                return Err(ParsePointerError::new(
                    "positions are 1-based; [0] is invalid",
                    c.abs_pos(),
                ));
            }
            Predicate::Position(n)
        } else if c.eat('@') {
            let name = c.take_ncname()?;
            c.skip_ws();
            if c.eat('=') {
                c.skip_ws();
                let value = c.take_quoted()?;
                Predicate::AttributeEquals(name, value)
            } else {
                Predicate::HasAttribute(name)
            }
        } else {
            let name = c.take_ncname()?;
            c.skip_ws();
            if c.eat('=') {
                c.skip_ws();
                let value = c.take_quoted()?;
                Predicate::ChildEquals(name, value)
            } else {
                return Err(ParsePointerError::new(
                    "expected '=' in child-value predicate",
                    c.abs_pos(),
                ));
            }
        };
        c.skip_ws();
        c.expect(']')?;
        out.push(p);
    }
    Ok(out)
}

fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

// ---- a tiny cursor --------------------------------------------------------

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            offset: 0,
        }
    }

    fn with_offset(src: &'a str, offset: usize) -> Self {
        Cursor {
            src,
            pos: 0,
            offset,
        }
    }

    fn abs_pos(&self) -> usize {
        self.offset + self.pos
    }

    fn base_offset(&self) -> usize {
        self.offset + self.pos
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParsePointerError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(ParsePointerError::new(
                format!("expected {c:?}, found {:?}", self.peek()),
                self.abs_pos(),
            ))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn take_ncname(&mut self) -> Result<String, ParsePointerError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            other => {
                return Err(ParsePointerError::new(
                    format!("expected a name, found {other:?}"),
                    self.abs_pos(),
                ))
            }
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
        {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn take_integer(&mut self) -> Result<usize, ParsePointerError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| ParsePointerError::new("expected an integer", self.offset + start))
    }

    fn take_quoted(&mut self) -> Result<String, ParsePointerError> {
        let quote = match self.peek() {
            Some(q @ ('\'' | '"')) => {
                self.bump();
                q
            }
            other => {
                return Err(ParsePointerError::new(
                    format!("expected a quoted string, found {other:?}"),
                    self.abs_pos(),
                ))
            }
        };
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let s = self.src[start..self.pos].to_string();
                self.bump();
                return Ok(s);
            }
            self.bump();
        }
        Err(ParsePointerError::new(
            "unterminated string literal",
            self.abs_pos(),
        ))
    }

    /// Consumes up to and including the `)` matching the already-consumed
    /// `(`; respects nested parens and quoted strings.
    fn take_until_balanced_close(&mut self) -> Result<String, ParsePointerError> {
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(c) = self.peek() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let s = self.src[start..self.pos].to_string();
                        self.bump();
                        return Ok(s);
                    }
                }
                '\'' | '"' => {
                    let quote = c;
                    self.bump();
                    while let Some(inner) = self.peek() {
                        self.bump();
                        if inner == quote {
                            break;
                        }
                    }
                    continue;
                }
                _ => {}
            }
            self.bump();
        }
        Err(ParsePointerError::new(
            "unbalanced parentheses in scheme data",
            self.abs_pos(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, NodeTest, Predicate};

    #[test]
    fn shorthand() {
        assert_eq!(
            parse("guitar").unwrap(),
            Pointer::Shorthand("guitar".into())
        );
        assert!(parse("0bad").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn element_scheme_forms() {
        let p = parse("element(picasso)").unwrap();
        assert_eq!(p.to_string(), "element(picasso)");
        let p = parse("element(picasso/1/2)").unwrap();
        assert_eq!(p.to_string(), "element(picasso/1/2)");
        let p = parse("element(/1/4/3)").unwrap();
        assert_eq!(p.to_string(), "element(/1/4/3)");
        assert!(parse("element()").is_err());
        assert!(parse("element(/0)").is_err());
        assert!(parse("element(a/b)").is_err());
    }

    #[test]
    fn xpointer_absolute_path() {
        let p = parse("xpointer(/museum/painter/painting)").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert!(path.absolute);
        assert_eq!(path.steps.len(), 3);
        assert_eq!(path.steps[0].node_test, NodeTest::Name("museum".into()));
    }

    #[test]
    fn xpointer_descendant_shorthand() {
        let p = parse("xpointer(//painting[@id='guitar'])").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert_eq!(path.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(
            path.steps[1].predicates[0],
            Predicate::AttributeEquals("id".into(), "guitar".into())
        );
    }

    #[test]
    fn xpointer_predicates() {
        let p = parse("xpointer(/a/b[2]/c[last()]/d[@k]/e[f='v'])").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert_eq!(path.steps[1].predicates[0], Predicate::Position(2));
        assert_eq!(path.steps[2].predicates[0], Predicate::Last);
        assert_eq!(
            path.steps[3].predicates[0],
            Predicate::HasAttribute("k".into())
        );
        assert_eq!(
            path.steps[4].predicates[0],
            Predicate::ChildEquals("f".into(), "v".into())
        );
    }

    #[test]
    fn xpointer_attribute_axis() {
        let p = parse("xpointer(/painting/@title)").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert_eq!(path.steps[1].axis, Axis::Attribute);
        assert_eq!(path.steps[1].node_test, NodeTest::Name("title".into()));
    }

    #[test]
    fn multiple_scheme_parts_fallback() {
        let p = parse("element(missing) xpointer(/a)").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn unknown_scheme_is_preserved() {
        let p = parse("xmlns(p=urn:x) xpointer(/a)").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        assert!(matches!(&parts[0], SchemePart::Unknown { name, .. } if name == "xmlns"));
    }

    #[test]
    fn nested_parens_in_scheme_data() {
        let p = parse("xpointer(/a/b[last()])").unwrap();
        assert_eq!(p.to_string(), "xpointer(/a/b[last()])");
    }

    #[test]
    fn quoted_paren_in_predicate_value() {
        let p = parse("xpointer(/a[@k='(x)'])").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert_eq!(
            path.steps[0].predicates[0],
            Predicate::AttributeEquals("k".into(), "(x)".into())
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("xpointer(/a)b").is_err());
        assert!(parse("xpointer(/a !)").is_err());
    }

    #[test]
    fn relative_path_allowed() {
        let p = parse("xpointer(painting[2])").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert!(!path.absolute);
    }

    #[test]
    fn explicit_axes() {
        let p = parse("xpointer(child::a/descendant-or-self::node()/self::b/parent::c)").unwrap();
        let Pointer::Schemes(parts) = p else { panic!() };
        let SchemePart::XPointer(path) = &parts[0] else {
            panic!()
        };
        assert_eq!(path.steps[0].axis, Axis::Child);
        assert_eq!(path.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(path.steps[2].axis, Axis::SelfAxis);
        assert_eq!(path.steps[3].axis, Axis::Parent);
    }
}
