//! Evaluation of pointers against a [`Document`].

use crate::ast::{Axis, ElementScheme, LocationPath, NodeTest, Pointer, Predicate, SchemePart};
use crate::error::EvalPointerError;
use navsep_xml::{Document, NodeId, NodeKind};

/// A location selected by a pointer: a node or an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// An element, text, comment, or PI node.
    Node(NodeId),
    /// An attribute of `of`, identified by local name, with its value.
    Attribute {
        /// The element owning the attribute.
        of: NodeId,
        /// The attribute's local name.
        name: String,
        /// The attribute's value at evaluation time.
        value: String,
    },
}

impl Location {
    /// The node this location refers to (the owner element for attributes).
    pub fn node(&self) -> NodeId {
        match self {
            Location::Node(n) => *n,
            Location::Attribute { of, .. } => *of,
        }
    }
}

/// Evaluates `pointer` against `doc`, returning all selected locations.
///
/// Scheme parts are tried left to right; the first part that selects a
/// non-empty set supplies the result (the XPointer framework's fallback
/// rule). Unknown schemes are skipped unless *all* parts are unknown.
///
/// # Errors
///
/// * [`EvalPointerError::NoMatch`] when nothing is selected.
/// * [`EvalPointerError::UnsupportedScheme`] when the pointer consists only
///   of schemes this engine cannot evaluate.
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
/// use navsep_xpointer::{evaluate, parse, Location};
///
/// let doc = Document::parse(r#"<m><p id="guitar"><t>Guitar</t></p></m>"#)?;
/// let locs = evaluate(&doc, &parse("guitar")?)?;
/// let Location::Node(n) = locs[0] else { unreachable!() };
/// assert_eq!(doc.text_content(n), "Guitar");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(doc: &Document, pointer: &Pointer) -> Result<Vec<Location>, EvalPointerError> {
    match pointer {
        Pointer::Shorthand(id) => match doc.element_by_id(id) {
            Some(n) => Ok(vec![Location::Node(n)]),
            None => Err(EvalPointerError::NoMatch(id.clone())),
        },
        Pointer::Schemes(parts) => {
            let mut saw_supported = false;
            for part in parts {
                match part {
                    SchemePart::Element(e) => {
                        saw_supported = true;
                        let locs = eval_element_scheme(doc, e);
                        if !locs.is_empty() {
                            return Ok(locs);
                        }
                    }
                    SchemePart::XPointer(path) => {
                        saw_supported = true;
                        let locs = eval_location_path(doc, path);
                        if !locs.is_empty() {
                            return Ok(locs);
                        }
                    }
                    SchemePart::Unknown { .. } => {}
                }
            }
            if saw_supported {
                Err(EvalPointerError::NoMatch(pointer.to_string()))
            } else {
                let name = match parts.first() {
                    Some(SchemePart::Unknown { name, .. }) => name.clone(),
                    _ => String::new(),
                };
                Err(EvalPointerError::UnsupportedScheme(name))
            }
        }
    }
}

/// Convenience: parse then evaluate, returning the first selected node.
///
/// # Errors
///
/// Propagates parse errors (as `NoMatch` with the raw text) and evaluation
/// errors.
pub fn resolve_first(doc: &Document, pointer_text: &str) -> Result<NodeId, EvalPointerError> {
    let pointer = crate::parser::parse(pointer_text)
        .map_err(|_| EvalPointerError::NoMatch(pointer_text.to_string()))?;
    let locs = evaluate(doc, &pointer)?;
    Ok(locs[0].node())
}

pub(crate) fn eval_element_scheme(doc: &Document, scheme: &ElementScheme) -> Vec<Location> {
    let mut current: NodeId = match &scheme.start_id {
        Some(id) => match doc.element_by_id(id) {
            Some(n) => n,
            None => return Vec::new(),
        },
        None => doc.document_node(),
    };
    for &step in &scheme.child_sequence {
        let mut elems = doc.child_elements(current);
        match elems.nth(step - 1) {
            Some(next) => current = next,
            None => return Vec::new(),
        }
    }
    if current == doc.document_node() {
        // element() must select an element, not the document node.
        match doc.root_element() {
            Some(root) => vec![Location::Node(root)],
            None => Vec::new(),
        }
    } else {
        vec![Location::Node(current)]
    }
}

/// Evaluates a location path with an explicit context node.
///
/// Relative paths start at `ctx`; absolute paths still start at the document
/// node. This is the entry point template engines use to evaluate `select`
/// expressions while walking a tree.
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
/// use navsep_xpointer::{evaluate_from, parser};
///
/// let doc = Document::parse("<a><b><c/><c/></b></a>")?;
/// let b = doc.first_child_named(doc.root_element().unwrap(), "b").unwrap();
/// let path = parser::parse_location_path("c", 0).unwrap();
/// assert_eq!(evaluate_from(&doc, b, &path).len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate_from(doc: &Document, ctx: NodeId, path: &LocationPath) -> Vec<Location> {
    let start = if path.absolute {
        vec![Location::Node(doc.document_node())]
    } else {
        vec![Location::Node(ctx)]
    };
    eval_steps(doc, start, path)
}

pub(crate) fn eval_location_path(doc: &Document, path: &LocationPath) -> Vec<Location> {
    let start: Vec<Location> = if path.absolute {
        vec![Location::Node(doc.document_node())]
    } else {
        match doc.root_element() {
            Some(root) => vec![Location::Node(root)],
            None => return Vec::new(),
        }
    };
    eval_steps(doc, start, path)
}

fn eval_steps(doc: &Document, start: Vec<Location>, path: &LocationPath) -> Vec<Location> {
    let mut current = start;
    for step in &path.steps {
        let mut next: Vec<Location> = Vec::new();
        for loc in &current {
            let Location::Node(ctx) = loc else {
                continue; // attribute locations have no further axes here
            };
            let mut selected = apply_axis(doc, *ctx, step.axis, &step.node_test);
            for pred in &step.predicates {
                selected = apply_predicate(doc, selected, pred);
            }
            next.extend(selected);
        }
        dedup_locations(&mut next);
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

fn apply_axis(doc: &Document, ctx: NodeId, axis: Axis, test: &NodeTest) -> Vec<Location> {
    match axis {
        Axis::Child => doc
            .children(ctx)
            .iter()
            .copied()
            .filter(|&c| node_test_matches(doc, c, test))
            .map(Location::Node)
            .collect(),
        Axis::DescendantOrSelf => doc
            .descendants(ctx)
            .filter(|&n| node_test_matches(doc, n, test))
            .map(Location::Node)
            .collect(),
        Axis::SelfAxis => {
            if node_test_matches(doc, ctx, test) {
                vec![Location::Node(ctx)]
            } else {
                Vec::new()
            }
        }
        Axis::Parent => match doc.parent(ctx) {
            Some(p) if node_test_matches(doc, p, test) => vec![Location::Node(p)],
            _ => Vec::new(),
        },
        Axis::Attribute => {
            let mut out = Vec::new();
            for a in doc.attributes(ctx) {
                let matches = match test {
                    NodeTest::Name(n) => a.name().local() == n,
                    NodeTest::Wildcard | NodeTest::AnyNode => true,
                    NodeTest::Text => false,
                };
                if matches {
                    out.push(Location::Attribute {
                        of: ctx,
                        name: a.name().local().to_string(),
                        value: a.value().to_string(),
                    });
                }
            }
            out
        }
    }
}

fn node_test_matches(doc: &Document, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(n) => doc.name(node).map(|q| q.local() == n).unwrap_or(false),
        NodeTest::Wildcard => doc.is_element(node),
        NodeTest::Text => matches!(doc.kind(node), NodeKind::Text(_)),
        // node() matches every node, including the document node, so that
        // `//x` (descendant-or-self::node()/child::x) can select the root.
        NodeTest::AnyNode => true,
    }
}

pub(crate) fn apply_predicate(
    doc: &Document,
    locs: Vec<Location>,
    pred: &Predicate,
) -> Vec<Location> {
    match pred {
        Predicate::Position(n) => locs.into_iter().skip(n - 1).take(1).collect(),
        Predicate::Last => match locs.last() {
            Some(l) => vec![l.clone()],
            None => Vec::new(),
        },
        Predicate::HasAttribute(name) => locs
            .into_iter()
            .filter(|l| match l {
                Location::Node(n) => doc.attribute(*n, name).is_some(),
                Location::Attribute { .. } => false,
            })
            .collect(),
        Predicate::AttributeEquals(name, value) => locs
            .into_iter()
            .filter(|l| match l {
                Location::Node(n) => doc.attribute(*n, name) == Some(value.as_str()),
                Location::Attribute { .. } => false,
            })
            .collect(),
        Predicate::ChildEquals(child, value) => locs
            .into_iter()
            .filter(|l| match l {
                Location::Node(n) => doc
                    .children_named(*n, child)
                    .any(|c| doc.text_content(c) == *value),
                Location::Attribute { .. } => false,
            })
            .collect(),
    }
}

fn dedup_locations(locs: &mut Vec<Location>) {
    let mut seen = std::collections::HashSet::new();
    locs.retain(|l| {
        let key = match l {
            Location::Node(n) => (*n, String::new()),
            Location::Attribute { of, name, .. } => (*of, name.clone()),
        };
        seen.insert(key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn museum() -> Document {
        Document::parse(
            r#"<museum>
  <painter id="picasso" name="Pablo Picasso">
    <painting id="guitar" title="Guitar" year="1913"/>
    <painting id="guernica" title="Guernica" year="1937"/>
    <painting id="avignon" title="Les Demoiselles d'Avignon" year="1907"/>
  </painter>
  <painter id="dali" name="Salvador Dali">
    <painting id="memory" title="The Persistence of Memory" year="1931"/>
  </painter>
</museum>"#,
        )
        .unwrap()
    }

    fn eval_str(doc: &Document, s: &str) -> Vec<Location> {
        evaluate(doc, &parse(s).unwrap()).unwrap()
    }

    #[test]
    fn shorthand_id() {
        let doc = museum();
        let locs = eval_str(&doc, "guernica");
        assert_eq!(locs.len(), 1);
        assert_eq!(doc.attribute(locs[0].node(), "title"), Some("Guernica"));
    }

    #[test]
    fn element_scheme_from_root() {
        let doc = museum();
        // /1 = museum, /1/1 = first painter, /1/1/2 = guernica
        let locs = eval_str(&doc, "element(/1/1/2)");
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("guernica"));
    }

    #[test]
    fn element_scheme_from_id() {
        let doc = museum();
        let locs = eval_str(&doc, "element(picasso/3)");
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("avignon"));
    }

    #[test]
    fn element_scheme_out_of_range_is_no_match() {
        let doc = museum();
        let err = evaluate(&doc, &parse("element(picasso/9)").unwrap()).unwrap_err();
        assert!(matches!(err, EvalPointerError::NoMatch(_)));
    }

    #[test]
    fn absolute_path() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(/museum/painter/painting)");
        assert_eq!(locs.len(), 4);
    }

    #[test]
    fn positional_predicate() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(/museum/painter[2]/painting[1])");
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("memory"));
    }

    #[test]
    fn last_predicate() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(/museum/painter[1]/painting[last()])");
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("avignon"));
    }

    #[test]
    fn attribute_equals_predicate() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(//painting[@id='guitar'])");
        assert_eq!(locs.len(), 1);
        assert_eq!(doc.attribute(locs[0].node(), "year"), Some("1913"));
    }

    #[test]
    fn attribute_axis_returns_values() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(//painting[@id='guitar']/@title)");
        assert_eq!(
            locs,
            vec![Location::Attribute {
                of: doc.element_by_id("guitar").unwrap(),
                name: "title".into(),
                value: "Guitar".into(),
            }]
        );
    }

    #[test]
    fn wildcard_and_descendants() {
        let doc = museum();
        assert_eq!(eval_str(&doc, "xpointer(/museum/*)").len(), 2);
        assert_eq!(eval_str(&doc, "xpointer(//*)").len(), 7); // museum + 2 painters + 4 paintings
    }

    #[test]
    fn has_attribute_predicate() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(//*[@year])");
        assert_eq!(locs.len(), 4);
    }

    #[test]
    fn parent_and_self_axes() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(//painting[@id='memory']/parent::painter)");
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("dali"));
        let locs = eval_str(&doc, "xpointer(//painter[@id='dali']/self::painter)");
        assert_eq!(locs.len(), 1);
    }

    #[test]
    fn fallback_across_scheme_parts() {
        let doc = museum();
        let locs = eval_str(
            &doc,
            "element(nonexistent) xpointer(//painting[@id='guitar'])",
        );
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("guitar"));
    }

    #[test]
    fn unsupported_scheme_only() {
        let doc = museum();
        let err = evaluate(&doc, &parse("xmlns(p=urn:x)").unwrap()).unwrap_err();
        assert!(matches!(err, EvalPointerError::UnsupportedScheme(s) if s == "xmlns"));
    }

    #[test]
    fn resolve_first_convenience() {
        let doc = museum();
        let n = resolve_first(&doc, "guitar").unwrap();
        assert_eq!(doc.attribute(n, "title"), Some("Guitar"));
        assert!(resolve_first(&doc, "missing").is_err());
    }

    #[test]
    fn text_node_test() {
        let doc = Document::parse("<a>hello<b/>world</a>").unwrap();
        let locs = eval_str(&doc, "xpointer(/a/text())");
        assert_eq!(locs.len(), 2);
    }

    #[test]
    fn child_equals_predicate() {
        let doc = Document::parse(
            "<lib><book><title>AOP</title></book><book><title>XML</title></book></lib>",
        )
        .unwrap();
        let locs = eval_str(&doc, "xpointer(/lib/book[title='XML'])");
        assert_eq!(locs.len(), 1);
    }

    #[test]
    fn relative_path_starts_at_root_element() {
        let doc = museum();
        let locs = eval_str(&doc, "xpointer(painter[1])");
        assert_eq!(doc.attribute(locs[0].node(), "id"), Some("picasso"));
    }
}
