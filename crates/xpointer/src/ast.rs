//! The XPointer abstract syntax tree.
//!
//! Three pointer forms from the XPointer framework are covered:
//!
//! * **shorthand** — a bare `NCName` identifying the element with that ID
//!   (`guitar`);
//! * **`element()` scheme** — `element(guitar/1/2)`: optional starting ID
//!   followed by a *child sequence* of 1-based element positions;
//! * **`xpointer()` scheme** — an XPath location-path subset:
//!   `xpointer(/museum/painter[2]/painting[@id='guitar'])`.
//!
//! Several scheme parts may be concatenated (`element(a) element(b)`); the
//! first that yields a non-empty location set wins, per the framework's
//! fallback rule.

use std::fmt;

/// A complete XPointer: either a shorthand ID or one-or-more scheme parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pointer {
    /// A bare name addressing the element with that `id` / `xml:id`.
    Shorthand(String),
    /// Scheme parts, tried left to right until one matches.
    Schemes(Vec<SchemePart>),
}

impl fmt::Display for Pointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pointer::Shorthand(name) => write!(f, "{name}"),
            Pointer::Schemes(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// One scheme invocation inside a pointer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemePart {
    /// `element(...)` — ID + child sequence addressing.
    Element(ElementScheme),
    /// `xpointer(...)` — XPath-subset location path.
    XPointer(LocationPath),
    /// Any other scheme, kept verbatim so callers can report it.
    Unknown {
        /// Scheme name as written.
        name: String,
        /// Raw scheme data between the parentheses.
        data: String,
    },
}

impl fmt::Display for SchemePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemePart::Element(e) => write!(f, "element({e})"),
            SchemePart::XPointer(p) => write!(f, "xpointer({p})"),
            SchemePart::Unknown { name, data } => write!(f, "{name}({data})"),
        }
    }
}

/// The `element()` scheme: optional starting ID, then 1-based child steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementScheme {
    /// Starting element ID; `None` starts at the document root.
    pub start_id: Option<String>,
    /// Each step selects the n-th *element* child (1-based).
    pub child_sequence: Vec<usize>,
}

impl fmt::Display for ElementScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(id) = &self.start_id {
            f.write_str(id)?;
        }
        for step in &self.child_sequence {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

/// An XPath-subset location path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationPath {
    /// `true` for paths beginning with `/` (evaluated from the document).
    pub absolute: bool,
    /// The steps, applied left to right.
    pub steps: Vec<Step>,
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            f.write_str("/")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// One location step: axis, node test, and zero or more predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The traversal direction.
    pub axis: Axis,
    /// What kind/name of node the step selects.
    pub node_test: NodeTest,
    /// Filters applied in order to the step's result.
    pub predicates: Vec<Predicate>,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => {}
            Axis::DescendantOrSelf => f.write_str("descendant-or-self::node()/")?,
            Axis::Attribute => f.write_str("@")?,
            Axis::SelfAxis => f.write_str("self::")?,
            Axis::Parent => f.write_str("parent::")?,
        }
        write!(f, "{}", self.node_test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// Traversal axes (the subset this engine evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Direct children (the default axis).
    Child,
    /// The node itself plus all descendants (`//` expands to this).
    DescendantOrSelf,
    /// Attributes of the context element (`@name`).
    Attribute,
    /// The context node itself (`.`).
    SelfAxis,
    /// The parent node (`..`).
    Parent,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// Elements (or attributes, on the attribute axis) with this local name.
    Name(String),
    /// Any element (`*`), or any attribute on the attribute axis.
    Wildcard,
    /// `text()` — text nodes.
    Text,
    /// `node()` — any node.
    AnyNode,
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::AnyNode => f.write_str("node()"),
        }
    }
}

/// Step predicates (the subset this engine evaluates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `[n]` — keep the n-th node of the step result (1-based).
    Position(usize),
    /// `[last()]` — keep the last node.
    Last,
    /// `[@name]` — keep elements that have the attribute.
    HasAttribute(String),
    /// `[@name='value']` — keep elements whose attribute equals the value.
    AttributeEquals(String, String),
    /// `[name='value']` — keep elements having a child `name` whose text
    /// content equals `value`.
    ChildEquals(String, String),
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Position(n) => write!(f, "{n}"),
            Predicate::Last => f.write_str("last()"),
            Predicate::HasAttribute(a) => write!(f, "@{a}"),
            Predicate::AttributeEquals(a, v) => write!(f, "@{a}='{v}'"),
            Predicate::ChildEquals(c, v) => write!(f, "{c}='{v}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_examples() {
        let p = Pointer::Shorthand("guitar".into());
        assert_eq!(p.to_string(), "guitar");

        let e = SchemePart::Element(ElementScheme {
            start_id: Some("picasso".into()),
            child_sequence: vec![1, 3],
        });
        assert_eq!(e.to_string(), "element(picasso/1/3)");

        let path = LocationPath {
            absolute: true,
            steps: vec![
                Step {
                    axis: Axis::Child,
                    node_test: NodeTest::Name("museum".into()),
                    predicates: vec![],
                },
                Step {
                    axis: Axis::Child,
                    node_test: NodeTest::Name("painting".into()),
                    predicates: vec![Predicate::AttributeEquals("id".into(), "guitar".into())],
                },
            ],
        };
        assert_eq!(path.to_string(), "/museum/painting[@id='guitar']");
    }

    #[test]
    fn unknown_scheme_preserved() {
        let u = SchemePart::Unknown {
            name: "xmlns".into(),
            data: "p=urn:x".into(),
        };
        assert_eq!(u.to_string(), "xmlns(p=urn:x)");
    }
}
