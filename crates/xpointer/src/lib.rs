//! # navsep-xpointer — sub-document addressing
//!
//! An XPointer engine for the navsep stack, implementing the three pointer
//! forms the paper's linkbases need: shorthand IDs, the `element()` scheme,
//! and an `xpointer()` XPath subset. In the paper's words (§6): *"XLink
//! determines the document to access and XPointer determines the exact point
//! in the document."* This crate is the second half of that sentence.
//!
//! ## Quick start
//!
//! ```
//! use navsep_xml::Document;
//! use navsep_xpointer::{parse, evaluate};
//!
//! let doc = Document::parse(
//!     r#"<museum><painting id="guitar" title="Guitar"/></museum>"#,
//! )?;
//!
//! // Shorthand pointer (by ID):
//! let locs = evaluate(&doc, &parse("guitar")?)?;
//! assert_eq!(doc.attribute(locs[0].node(), "title"), Some("Guitar"));
//!
//! // XPath-subset pointer:
//! let locs = evaluate(&doc, &parse("xpointer(//painting[@title='Guitar'])")?)?;
//! assert_eq!(locs.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod eval;
pub mod parser;

pub use ast::{Axis, ElementScheme, LocationPath, NodeTest, Pointer, Predicate, SchemePart, Step};
pub use compile::{CompiledPath, CompiledPointer};
pub use error::{EvalPointerError, ParsePointerError};
pub use eval::{evaluate, evaluate_from, resolve_first, Location};
pub use parser::parse;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pointer>();
        assert_send_sync::<Location>();
        assert_send_sync::<ParsePointerError>();
        assert_send_sync::<EvalPointerError>();
    }
}
