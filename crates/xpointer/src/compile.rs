//! Compiled pointer plans evaluated against the per-document index.
//!
//! The interpreter in [`eval`] walks `descendants()` for every
//! `//` step and scans children per axis application — O(document) per
//! evaluation. A [`CompiledPointer`] analyzes the pointer **once** and, for
//! the shapes the [`DocumentIndex`] can answer,
//! evaluates from index buckets in O(matches):
//!
//! * shorthand IDs and `element()` starting IDs — one map lookup;
//! * pure child chains (`/museum/painter/painting[...]`) — right-to-left
//!   verification of the last step's tag bucket;
//! * descendant name steps (`//painting[...]`) — the tag bucket, re-ordered
//!   to the interpreter's parent-grouped document order;
//! * `[@id='…']` / `[@name='…']` predicates — candidate narrowing through
//!   the id/name-attribute buckets.
//!
//! Anything else (wildcards, attribute/parent/self axes, predicates on
//! intermediate steps) falls back to the interpreter, so compiled
//! evaluation is **always** equivalent to [`evaluate`](crate::evaluate) —
//! a law the proptest suite pins down over random documents and pointers.

use crate::ast::{Axis, ElementScheme, LocationPath, NodeTest, Pointer, Predicate, SchemePart};
use crate::error::EvalPointerError;
use crate::eval::{self, Location};
use navsep_xml::{Document, DocumentIndex, NodeId};

/// A pointer analyzed once for repeated, index-accelerated evaluation.
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
/// use navsep_xpointer::{parse, evaluate, CompiledPointer};
///
/// let doc = Document::parse(r#"<m><p id="guitar" year="1913"/></m>"#)?;
/// let pointer = parse("xpointer(//p[@id='guitar'])")?;
/// let compiled = CompiledPointer::compile(&pointer);
/// assert_eq!(compiled.evaluate(&doc)?, evaluate(&doc, &pointer)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPointer {
    source: Pointer,
    plan: PointerPlan,
}

#[derive(Debug, Clone)]
enum PointerPlan {
    Shorthand(String),
    Schemes(Vec<PartPlan>),
}

#[derive(Debug, Clone)]
enum PartPlan {
    Element(ElementScheme),
    Path(CompiledPath),
    Unknown,
}

impl CompiledPointer {
    /// Analyzes `pointer` into an evaluation plan.
    pub fn compile(pointer: &Pointer) -> Self {
        let plan = match pointer {
            Pointer::Shorthand(id) => PointerPlan::Shorthand(id.clone()),
            Pointer::Schemes(parts) => PointerPlan::Schemes(
                parts
                    .iter()
                    .map(|part| match part {
                        SchemePart::Element(e) => PartPlan::Element(e.clone()),
                        SchemePart::XPointer(path) => PartPlan::Path(CompiledPath::compile(path)),
                        SchemePart::Unknown { .. } => PartPlan::Unknown,
                    })
                    .collect(),
            ),
        };
        CompiledPointer {
            source: pointer.clone(),
            plan,
        }
    }

    /// Parses and compiles pointer text in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`ParsePointerError`](crate::ParsePointerError) from the
    /// parser.
    pub fn parse(text: &str) -> Result<Self, crate::ParsePointerError> {
        Ok(Self::compile(&crate::parser::parse(text)?))
    }

    /// The pointer this plan was compiled from.
    pub fn source(&self) -> &Pointer {
        &self.source
    }

    /// `true` when at least one scheme part evaluates from the index
    /// instead of the interpreter (shorthand pointers always do).
    pub fn uses_index(&self) -> bool {
        match &self.plan {
            PointerPlan::Shorthand(_) => true,
            PointerPlan::Schemes(parts) => parts.iter().any(|p| match p {
                PartPlan::Element(_) => true,
                PartPlan::Path(cp) => cp.uses_index(),
                PartPlan::Unknown => false,
            }),
        }
    }

    /// Evaluates the plan against `doc`.
    ///
    /// Result and error behavior are identical to
    /// [`evaluate`](crate::evaluate) on the source pointer: scheme parts
    /// are tried left to right, the first non-empty set wins.
    ///
    /// # Errors
    ///
    /// * [`EvalPointerError::NoMatch`] when nothing is selected.
    /// * [`EvalPointerError::UnsupportedScheme`] when the pointer consists
    ///   only of schemes this engine cannot evaluate.
    pub fn evaluate(&self, doc: &Document) -> Result<Vec<Location>, EvalPointerError> {
        match &self.plan {
            PointerPlan::Shorthand(id) => match doc.element_by_id(id) {
                Some(n) => Ok(vec![Location::Node(n)]),
                None => Err(EvalPointerError::NoMatch(id.clone())),
            },
            PointerPlan::Schemes(parts) => {
                let mut saw_supported = false;
                for part in parts {
                    match part {
                        PartPlan::Element(e) => {
                            saw_supported = true;
                            let locs = eval::eval_element_scheme(doc, e);
                            if !locs.is_empty() {
                                return Ok(locs);
                            }
                        }
                        PartPlan::Path(path) => {
                            saw_supported = true;
                            let locs = path.eval_as_scheme_part(doc);
                            if !locs.is_empty() {
                                return Ok(locs);
                            }
                        }
                        PartPlan::Unknown => {}
                    }
                }
                if saw_supported {
                    Err(EvalPointerError::NoMatch(self.source.to_string()))
                } else {
                    let name = match &self.source {
                        Pointer::Schemes(parts) => match parts.first() {
                            Some(SchemePart::Unknown { name, .. }) => name.clone(),
                            _ => String::new(),
                        },
                        Pointer::Shorthand(_) => String::new(),
                    };
                    Err(EvalPointerError::UnsupportedScheme(name))
                }
            }
        }
    }
}

/// A location path analyzed once for index-accelerated evaluation.
///
/// Produced standalone via [`CompiledPath::compile`] (template engines
/// caching `select` expressions) or as part of a [`CompiledPointer`].
#[derive(Debug, Clone)]
pub struct CompiledPath {
    source: LocationPath,
    plan: PathPlan,
}

#[derive(Debug, Clone)]
enum PathPlan {
    /// A pure child chain of name tests with predicates only on the final
    /// step: candidates come from the last name's tag bucket and are
    /// verified right-to-left up the ancestor chain.
    Chain {
        names: Vec<String>,
        predicates: Vec<Predicate>,
    },
    /// Exactly `//name[preds]`: the tag bucket re-sorted to the
    /// interpreter's (parent pre-order, child order) result order.
    Descendant {
        name: String,
        predicates: Vec<Predicate>,
    },
    /// Everything else: delegate to the interpreter.
    Interp,
}

impl CompiledPath {
    /// Analyzes `path` into an evaluation plan.
    pub fn compile(path: &LocationPath) -> Self {
        CompiledPath {
            source: path.clone(),
            plan: plan_for(path),
        }
    }

    /// The location path this plan was compiled from.
    pub fn source(&self) -> &LocationPath {
        &self.source
    }

    /// `true` when the plan evaluates from index buckets rather than the
    /// interpreter.
    pub fn uses_index(&self) -> bool {
        !matches!(self.plan, PathPlan::Interp)
    }

    /// Evaluates with an explicit context node, mirroring
    /// [`evaluate_from`](crate::evaluate_from): relative paths start at
    /// `ctx`, absolute paths at the document node.
    ///
    /// The index answers whole-document questions, so the fast plans are
    /// used when the starting point is the document node or the root
    /// element; other contexts delegate to the interpreter (whose child
    /// scans are already proportional to the subtree).
    pub fn evaluate_from(&self, doc: &Document, ctx: NodeId) -> Vec<Location> {
        if let PathPlan::Interp = self.plan {
            return eval::evaluate_from(doc, ctx, &self.source);
        }
        let base = if self.source.absolute {
            doc.document_node()
        } else {
            ctx
        };
        if base == doc.document_node() || Some(base) == doc.root_element() {
            self.eval_fast(doc, base)
        } else {
            eval::evaluate_from(doc, ctx, &self.source)
        }
    }

    /// Evaluates as an `xpointer(...)` scheme part: relative paths start
    /// at the root element, absolute paths at the document node.
    pub(crate) fn eval_as_scheme_part(&self, doc: &Document) -> Vec<Location> {
        if let PathPlan::Interp = self.plan {
            return eval::eval_location_path(doc, &self.source);
        }
        let base = if self.source.absolute {
            doc.document_node()
        } else {
            match doc.root_element() {
                Some(root) => root,
                None => return Vec::new(),
            }
        };
        self.eval_fast(doc, base)
    }

    fn eval_fast(&self, doc: &Document, base: NodeId) -> Vec<Location> {
        let index = doc.index();
        match &self.plan {
            PathPlan::Chain { names, predicates } => {
                let last = names.last().expect("chain plans have at least one step");
                let candidates = narrowed_candidates(doc, index, last, predicates);
                let mut matched: Vec<NodeId> = Vec::new();
                'candidate: for &c in &candidates {
                    // Verify the ancestor name chain right-to-left, then
                    // require the node above the first step to be the base.
                    let mut cur = c;
                    for name in names.iter().rev().skip(1) {
                        let Some(p) = doc.parent(cur) else {
                            continue 'candidate;
                        };
                        if doc.name(p).map(|q| q.local() == name) != Some(true) {
                            continue 'candidate;
                        }
                        cur = p;
                    }
                    if doc.parent(cur) != Some(base) {
                        continue 'candidate;
                    }
                    matched.push(c);
                }
                // Bucket order is document order; same-depth nodes sharing a
                // parent are contiguous, so per-parent predicate groups are
                // already adjacent.
                apply_predicates_grouped(doc, &matched, predicates)
            }
            PathPlan::Descendant { name, predicates } => {
                let candidates = narrowed_candidates(doc, index, name, predicates);
                let everything = base == doc.document_node();
                let mut matched: Vec<NodeId> = candidates
                    .into_iter()
                    .filter(|&c| match doc.parent(c) {
                        Some(p) => everything || node_within(doc, p, base),
                        None => false,
                    })
                    .collect();
                // The interpreter emits `//name` grouped by the context
                // (parent) node's pre-order position, not in flat document
                // order; reproduce that exactly.
                matched.sort_by_key(|&c| {
                    let parent = doc.parent(c).expect("filtered above");
                    (index.order_of(parent), index.order_of(c))
                });
                apply_predicates_grouped(doc, &matched, predicates)
            }
            PathPlan::Interp => unreachable!("handled by the callers"),
        }
    }
}

fn plan_for(path: &LocationPath) -> PathPlan {
    let steps = &path.steps;
    if steps.is_empty() {
        return PathPlan::Interp;
    }
    // `//name[preds]` parses to [descendant-or-self::node(), child::name].
    if steps.len() == 2
        && steps[0].axis == Axis::DescendantOrSelf
        && steps[0].node_test == NodeTest::AnyNode
        && steps[0].predicates.is_empty()
        && steps[1].axis == Axis::Child
    {
        if let NodeTest::Name(name) = &steps[1].node_test {
            return PathPlan::Descendant {
                name: name.clone(),
                predicates: steps[1].predicates.clone(),
            };
        }
    }
    // Pure child chains of name tests, predicates only on the last step.
    let chain_shaped = steps
        .iter()
        .all(|s| s.axis == Axis::Child && matches!(s.node_test, NodeTest::Name(_)))
        && steps[..steps.len() - 1]
            .iter()
            .all(|s| s.predicates.is_empty());
    if chain_shaped {
        let names = steps
            .iter()
            .map(|s| match &s.node_test {
                NodeTest::Name(n) => n.clone(),
                _ => unreachable!("checked above"),
            })
            .collect();
        return PathPlan::Chain {
            names,
            predicates: steps[steps.len() - 1].predicates.clone(),
        };
    }
    PathPlan::Interp
}

/// Step-level candidates for a name test, narrowed through the id /
/// name-attribute buckets when an `[@id='…']` / `[@name='…']` predicate is
/// reachable before any positional predicate. The narrowing predicate is a
/// pure per-node filter, so applying it up front commutes with the other
/// value filters ahead of it and leaves the later (positional) predicates
/// operating on exactly the set the interpreter would see.
fn narrowed_candidates(
    doc: &Document,
    index: &DocumentIndex,
    name: &str,
    predicates: &[Predicate],
) -> Vec<NodeId> {
    for pred in predicates {
        match pred {
            Predicate::Position(_) | Predicate::Last => break,
            Predicate::AttributeEquals(attr, value) if attr == "id" => {
                return filter_named(doc, index.elements_with_id(value), name);
            }
            Predicate::AttributeEquals(attr, value) if attr == "name" => {
                return filter_named(doc, index.elements_with_name_attr(value), name);
            }
            _ => {}
        }
    }
    index.elements_named(name).to_vec()
}

fn filter_named(doc: &Document, bucket: &[NodeId], name: &str) -> Vec<NodeId> {
    bucket
        .iter()
        .copied()
        .filter(|&n| doc.name(n).map(|q| q.local() == name).unwrap_or(false))
        .collect()
}

/// Applies predicates to `matched` (document-ordered, same-parent runs
/// contiguous) per parent group, exactly as the interpreter applies them
/// per context node.
fn apply_predicates_grouped(
    doc: &Document,
    matched: &[NodeId],
    predicates: &[Predicate],
) -> Vec<Location> {
    if predicates.is_empty() {
        return matched.iter().copied().map(Location::Node).collect();
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < matched.len() {
        let parent = doc.parent(matched[i]);
        let mut j = i;
        while j < matched.len() && doc.parent(matched[j]) == parent {
            j += 1;
        }
        let mut group: Vec<Location> = matched[i..j].iter().copied().map(Location::Node).collect();
        for pred in predicates {
            group = eval::apply_predicate(doc, group, pred);
        }
        out.extend(group);
        i = j;
    }
    out
}

/// `true` when `node` is `base` or a descendant of it.
fn node_within(doc: &Document, mut node: NodeId, base: NodeId) -> bool {
    loop {
        if node == base {
            return true;
        }
        match doc.parent(node) {
            Some(p) => node = p,
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn museum() -> Document {
        Document::parse(
            r#"<museum>
  <painter id="picasso" name="Pablo Picasso">
    <painting id="guitar" title="Guitar" year="1913"/>
    <painting id="guernica" title="Guernica" year="1937"/>
    <painting id="avignon" title="Les Demoiselles d'Avignon" year="1907"/>
  </painter>
  <painter id="dali" name="Salvador Dali">
    <painting id="memory" title="The Persistence of Memory" year="1931"/>
  </painter>
</museum>"#,
        )
        .unwrap()
    }

    #[track_caller]
    fn assert_equiv(doc: &Document, text: &str) {
        let pointer = parse(text).unwrap();
        let compiled = CompiledPointer::compile(&pointer);
        assert_eq!(
            compiled.evaluate(doc),
            crate::evaluate(doc, &pointer),
            "compiled ≠ interpreter for {text:?}"
        );
    }

    #[test]
    fn compiled_matches_interpreter_on_museum_forms() {
        let doc = museum();
        for text in [
            "guitar",
            "missing",
            "element(picasso/3)",
            "element(/1/1/2)",
            "element(nonexistent)",
            "xpointer(/museum/painter/painting)",
            "xpointer(/museum/painter[2]/painting[1])",
            "xpointer(/museum/painter[1]/painting[last()])",
            "xpointer(//painting[@id='guitar'])",
            "xpointer(//painting[@id='guitar']/@title)",
            "xpointer(//painter)",
            "xpointer(//*[@year])",
            "xpointer(/museum/*)",
            "xpointer(painter[1])",
            "xpointer(painter[@name='Salvador Dali'])",
            "xpointer(//painting[@year='1931'])",
            "element(nonexistent) xpointer(//painting[@id='guitar'])",
            "xmlns(p=urn:x)",
        ] {
            assert_equiv(&doc, text);
        }
    }

    #[test]
    fn fast_plans_engage_for_indexable_shapes() {
        for (text, indexed) in [
            ("guitar", true),
            ("element(picasso/3)", true),
            ("xpointer(/museum/painter/painting)", true),
            ("xpointer(//painting[@id='guitar'])", true),
            ("xpointer(painter[1])", true),
            ("xpointer(//*)", false),
            ("xpointer(/museum/*)", false),
            ("xpointer(//painting/@title)", false),
            ("xmlns(p=urn:x)", false),
        ] {
            let compiled = CompiledPointer::parse(text).unwrap();
            assert_eq!(compiled.uses_index(), indexed, "{text:?}");
        }
    }

    #[test]
    fn descendant_order_matches_interpreter_grouping() {
        // `//x` emits parent-grouped order, not flat document order; the
        // compiled plan must reproduce it byte for byte.
        let doc = Document::parse("<a><b><x id='in-b'/></b><x id='top'/></a>").unwrap();
        assert_equiv(&doc, "xpointer(//x)");
        let pointer = parse("xpointer(//x)").unwrap();
        let locs = CompiledPointer::compile(&pointer).evaluate(&doc).unwrap();
        let ids: Vec<_> = locs
            .iter()
            .map(|l| doc.attribute(l.node(), "id").unwrap())
            .collect();
        assert_eq!(ids, ["top", "in-b"]);
    }

    #[test]
    fn narrowing_respects_predicate_order() {
        // A positional predicate before the id filter must disable
        // narrowing: [2][@id='x'] means "the second painting, if its id is
        // x" — not "the element with id x".
        let doc = museum();
        assert_equiv(&doc, "xpointer(//painting[2][@id='guernica'])");
        assert_equiv(&doc, "xpointer(//painting[2][@id='guitar'])");
        // Value filter before a positional one narrows soundly.
        assert_equiv(&doc, "xpointer(//painting[@id='guernica'][1])");
        assert_equiv(&doc, "xpointer(/museum/painter[@name='Pablo Picasso'][1])");
    }

    #[test]
    fn evaluate_from_matches_interpreter() {
        let doc = museum();
        let root = doc.root_element().unwrap();
        let picasso = doc.element_by_id("picasso").unwrap();
        for (ctx, text) in [
            (root, "painter/painting"),
            (root, "painter[2]"),
            (picasso, "painting[@id='guitar']"),
            (picasso, "/museum/painter"),
            (picasso, "painting[last()]"),
        ] {
            let path = crate::parser::parse_location_path(text, 0).unwrap();
            let compiled = CompiledPath::compile(&path);
            assert_eq!(
                compiled.evaluate_from(&doc, ctx),
                eval::evaluate_from(&doc, ctx, &path),
                "compiled ≠ interpreter for {text:?}"
            );
        }
    }

    #[test]
    fn empty_document_yields_no_match() {
        let doc = Document::new();
        let compiled = CompiledPointer::parse("xpointer(painter)").unwrap();
        assert!(matches!(
            compiled.evaluate(&doc),
            Err(EvalPointerError::NoMatch(_))
        ));
    }
}
