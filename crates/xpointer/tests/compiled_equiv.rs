//! Equivalence law: compiled pointer evaluation ≡ interpreter evaluation.
//!
//! [`CompiledPointer`] promises the *same observable behaviour* as
//! [`evaluate`] — same locations, same order, same errors — only faster on
//! index-friendly forms. This suite checks that law over random documents
//! (with id/name attributes so the index buckets are populated) and random
//! pointers drawn from every form the compiler plans for, plus forms it must
//! fall back to the interpreter on.

use navsep_xml::{Document, ElementBuilder, NodeId};
use navsep_xpointer::{
    evaluate, evaluate_from, parse, CompiledPath, CompiledPointer, Pointer, SchemePart,
};
use proptest::prelude::*;

/// Element names from a small pool so pointers actually match.
fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("painting".to_string()),
        Just("room".to_string()),
    ]
}

/// Optional id / name attributes from small pools (duplicates included on
/// purpose: `element_by_id` and the id bucket must agree on the winner).
fn attrs_strategy() -> impl Strategy<Value = (Option<String>, Option<String>)> {
    (
        proptest::option::of("i[0-7]"),
        proptest::option::of("n[0-3]"),
    )
}

fn tree_strategy() -> impl Strategy<Value = ElementBuilder> {
    let leaf = (name_strategy(), attrs_strategy()).prop_map(|(n, (id, name))| {
        let mut b = ElementBuilder::new(n.as_str());
        if let Some(id) = id {
            b = b.attr("id", id);
        }
        if let Some(name) = name {
            b = b.attr("name", name);
        }
        b
    });
    leaf.prop_recursive(4, 48, 5, |inner| {
        (
            name_strategy(),
            attrs_strategy(),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(n, (id, name), children)| {
                let mut b = ElementBuilder::new(n.as_str());
                if let Some(id) = id {
                    b = b.attr("id", id);
                }
                if let Some(name) = name {
                    b = b.attr("name", name);
                }
                b.children(children)
            })
    })
}

/// Id values from the same pool the documents draw on.
fn id_strategy() -> impl Strategy<Value = String> {
    "i[0-7]".prop_map(|s| s)
}

/// Pointer texts covering every compiled plan plus interpreter fallbacks.
fn pointer_text_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Shorthand (index id lookup).
        id_strategy(),
        // element() scheme: child sequences, with and without an id base.
        proptest::collection::vec(1usize..4, 1..4).prop_map(|seq| format!(
            "element(/{})",
            seq.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("/")
        )),
        (id_strategy(), 1usize..4).prop_map(|(i, n)| format!("element({i}/{n})")),
        // Descendant name tests (index tag bucket).
        name_strategy().prop_map(|n| format!("xpointer(//{n})")),
        // Descendant with id / name equality predicates (bucket narrowing).
        (name_strategy(), id_strategy()).prop_map(|(n, i)| format!("xpointer(//{n}[@id='{i}'])")),
        (name_strategy(), "n[0-3]").prop_map(|(n, v)| format!("xpointer(//{n}[@name='{v}'])")),
        // Child chains (compiled without the index).
        (name_strategy(), name_strategy()).prop_map(|(a, b)| format!("xpointer(/{a}/{b})")),
        (name_strategy(), name_strategy(), 1usize..4)
            .prop_map(|(a, b, p)| format!("xpointer(/{a}/{b}[{p}])")),
        // Positional / attribute predicates on descendants.
        (name_strategy(), 1usize..4).prop_map(|(n, p)| format!("xpointer(//{n}[{p}])")),
        name_strategy().prop_map(|n| format!("xpointer(//{n}[last()])")),
        name_strategy().prop_map(|n| format!("xpointer(//{n}[@id])")),
        // Interpreter-only shapes: wildcard, relative, multi-part fallback.
        Just("xpointer(//*)".to_string()),
        name_strategy().prop_map(|n| format!("xpointer({n})")),
        (id_strategy(), name_strategy())
            .prop_map(|(i, n)| format!("element(/9/9)xpointer(//{n}[@id='{i}'])")),
    ]
}

proptest! {
    /// The headline law: for any document and any parsable pointer, the
    /// compiled evaluation returns exactly the interpreter's result —
    /// including the error cases (NoMatch vs UnsupportedScheme).
    #[test]
    fn compiled_pointer_equals_interpreter(
        tree in tree_strategy(),
        text in pointer_text_strategy(),
    ) {
        let doc = tree.build_document();
        let pointer = parse(&text).expect("generated pointers parse");
        let interpreted = evaluate(&doc, &pointer);
        let compiled = CompiledPointer::compile(&pointer).evaluate(&doc);
        prop_assert_eq!(
            format!("{interpreted:?}"),
            format!("{compiled:?}"),
            "pointer {} diverged",
            text
        );
    }

    /// Relative evaluation from arbitrary contexts must also agree (the
    /// compiled path may only use its fast plan from root contexts; from
    /// anywhere else it must reproduce the interpreter exactly).
    #[test]
    fn compiled_path_equals_interpreter_from_any_context(
        tree in tree_strategy(),
        text in pointer_text_strategy(),
        ctx_pick in 0usize..64,
    ) {
        let doc = tree.build_document();
        let pointer = parse(&text).expect("generated pointers parse");
        let Pointer::Schemes(parts) = &pointer else { return Ok(()) };
        let paths: Vec<_> = parts
            .iter()
            .filter_map(|p| match p {
                SchemePart::XPointer(path) => Some(path),
                _ => None,
            })
            .collect();
        let elements: Vec<NodeId> = doc
            .descendants(doc.document_node())
            .filter(|&n| doc.is_element(n))
            .collect();
        prop_assume!(!elements.is_empty());
        let ctx = elements[ctx_pick % elements.len()];
        for path in paths {
            let compiled = CompiledPath::compile(path);
            prop_assert_eq!(
                compiled.evaluate_from(&doc, ctx),
                evaluate_from(&doc, ctx, path),
                "path {} diverged from ctx {:?}",
                path,
                ctx
            );
        }
    }

    /// Compilation itself never panics on any parsable input.
    #[test]
    fn compile_never_panics(input in "[a-z()/@\\[\\]'=*0-9 ]{0,48}") {
        if let Ok(pointer) = parse(&input) {
            let _ = CompiledPointer::compile(&pointer);
        }
    }
}

/// Deterministic sweep on a museum-shaped document: every pointer form the
/// repo's linkbases use, compiled vs interpreted, including misses.
#[test]
fn museum_pointer_sweep() {
    let doc = Document::parse(
        r#"<museum>
             <painter id="picasso" name="cubism">
               <painting id="guitar"><title>Guitar</title></painting>
               <painting id="guernica"><title>Guernica</title></painting>
             </painter>
             <painter id="miro"><painting id="harlequin"/></painter>
           </museum>"#,
    )
    .unwrap();
    for text in [
        "guitar",
        "nope",
        "element(/1/1/2)",
        "element(picasso/2)",
        "xpointer(//painting)",
        "xpointer(//painting[@id='guernica'])",
        "xpointer(//painter[@name='cubism'])",
        "xpointer(/museum/painter)",
        "xpointer(/museum/painter[2]/painting)",
        "xpointer(//painting[last()])",
        "xpointer(//sculpture)",
    ] {
        let pointer = parse(text).unwrap();
        let interpreted = evaluate(&doc, &pointer);
        let compiled = CompiledPointer::compile(&pointer).evaluate(&doc);
        assert_eq!(
            format!("{interpreted:?}"),
            format!("{compiled:?}"),
            "pointer {text} diverged"
        );
    }
}
