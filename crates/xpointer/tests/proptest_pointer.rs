//! Property-based tests for the XPointer engine.
//!
//! Core invariants:
//! 1. For every element in a random tree, its canonical `element()` child
//!    sequence resolves back to exactly that element.
//! 2. `parse ∘ to_string` is the identity on parsed pointers.
//! 3. The parser never panics on arbitrary input.

use navsep_xml::{Document, ElementBuilder, NodeId};
use navsep_xpointer::{evaluate, parse, Location};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,6}".prop_map(|s| s)
}

fn tree_strategy() -> impl Strategy<Value = ElementBuilder> {
    let leaf = name_strategy().prop_map(|n| ElementBuilder::new(n.as_str()));
    leaf.prop_recursive(4, 32, 5, |inner| {
        (name_strategy(), proptest::collection::vec(inner, 0..5))
            .prop_map(|(name, children)| ElementBuilder::new(name.as_str()).children(children))
    })
}

/// Computes the canonical element() child sequence of `node` from the root.
fn child_sequence(doc: &Document, node: NodeId) -> Vec<usize> {
    let mut seq = Vec::new();
    let mut cur = node;
    while let Some(parent) = doc.parent(cur) {
        let pos = doc
            .child_elements(parent)
            .position(|c| c == cur)
            .expect("node must be among parent's element children")
            + 1;
        seq.push(pos);
        cur = parent;
    }
    seq.reverse();
    seq
}

proptest! {
    #[test]
    fn element_scheme_round_trips_every_node(tree in tree_strategy()) {
        let doc = tree.build_document();
        let all: Vec<NodeId> = doc
            .descendants(doc.document_node())
            .filter(|&n| doc.is_element(n))
            .collect();
        for node in all {
            let seq = child_sequence(&doc, node);
            let ptr_text = format!(
                "element(/{})",
                seq.iter().map(|n| n.to_string()).collect::<Vec<_>>().join("/")
            );
            let ptr = parse(&ptr_text).unwrap();
            let locs = evaluate(&doc, &ptr).unwrap();
            prop_assert_eq!(locs, vec![Location::Node(node)]);
        }
    }

    #[test]
    fn display_parse_round_trip(tree in tree_strategy(), steps in proptest::collection::vec(1usize..5, 1..4)) {
        // Build a syntactically valid element() pointer and round-trip it.
        let _ = tree; // tree not needed for syntax round-trip
        let text = format!(
            "element(/{})",
            steps.iter().map(|n| n.to_string()).collect::<Vec<_>>().join("/")
        );
        let ptr = parse(&text).unwrap();
        let reparsed = parse(&ptr.to_string()).unwrap();
        prop_assert_eq!(ptr, reparsed);
    }

    #[test]
    fn descendant_wildcard_counts_all_elements(tree in tree_strategy()) {
        let doc = tree.build_document();
        let expected = doc
            .descendants(doc.document_node())
            .filter(|&n| doc.is_element(n))
            .count();
        let locs = evaluate(&doc, &parse("xpointer(//*)").unwrap()).unwrap();
        prop_assert_eq!(locs.len(), expected);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,64}") {
        let _ = parse(&input);
    }

    #[test]
    fn pointerish_inputs_never_panic(input in "[a-z()/@\\[\\]'=*0-9 ]{0,48}") {
        let _ = parse(&input);
    }
}
