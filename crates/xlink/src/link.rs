//! Simple and extended link structures, and arc expansion.
//!
//! An **extended link** (XLink 1.0 §5.1) is an element with
//! `xlink:type="extended"` containing:
//!
//! * *locator* children (`type="locator"`) naming **remote** resources;
//! * *resource* children (`type="resource"`) supplying **local** resources;
//! * *arc* children (`type="arc"`) declaring traversal rules between
//!   `xlink:label`s;
//! * *title* children (`type="title"`) for human consumption.
//!
//! Arcs name label *groups*: an arc `from="painting" to="painting"` with
//! three resources labeled `painting` expands to nine concrete traversals.
//! Omitted `from`/`to` mean "every label in the link". [`ExtendedLink::traversals`]
//! performs this expansion — it is what the navigation weaver consumes.

use crate::attrs::{Actuate, LinkType, Show, XLinkAttrs};
use crate::error::XLinkError;
use crate::href::Href;
use navsep_xml::{Document, NodeId};

/// A link expressed entirely on one element (`xlink:type="simple"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleLink {
    /// The element carrying the link.
    pub element: NodeId,
    /// Where the link points.
    pub href: Href,
    /// Semantic role of the remote resource.
    pub role: Option<String>,
    /// Semantic role of the arc itself.
    pub arcrole: Option<String>,
    /// Human-readable title.
    pub title: Option<String>,
    /// Presentation intent.
    pub show: Show,
    /// Traversal timing.
    pub actuate: Actuate,
}

/// A remote resource participating in an extended link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Locator {
    /// The locator element.
    pub element: NodeId,
    /// Label other arcs refer to (may be absent, making it un-traversable).
    pub label: Option<String>,
    /// Where the remote resource lives.
    pub href: Href,
    /// Semantic role.
    pub role: Option<String>,
    /// Human-readable title.
    pub title: Option<String>,
}

/// A local resource participating in an extended link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// The resource element (its content *is* the resource).
    pub element: NodeId,
    /// Label other arcs refer to.
    pub label: Option<String>,
    /// Semantic role.
    pub role: Option<String>,
    /// Human-readable title.
    pub title: Option<String>,
}

/// A traversal rule between label groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArcRule {
    /// The arc element.
    pub element: NodeId,
    /// Starting label group; `None` = all labels.
    pub from: Option<String>,
    /// Ending label group; `None` = all labels.
    pub to: Option<String>,
    /// Semantic role of the traversal (e.g. the navsep `next` arcrole).
    pub arcrole: Option<String>,
    /// Presentation intent.
    pub show: Show,
    /// Traversal timing.
    pub actuate: Actuate,
    /// Human-readable title.
    pub title: Option<String>,
}

/// One endpoint of a concrete traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A remote resource (from a locator).
    Remote(Href),
    /// A local resource (content of a `resource` element).
    Local(NodeId),
}

impl Endpoint {
    /// The href when the endpoint is remote.
    pub fn href(&self) -> Option<&Href> {
        match self {
            Endpoint::Remote(h) => Some(h),
            Endpoint::Local(_) => None,
        }
    }
}

/// A concrete traversal produced by expanding an arc over its label groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traversal {
    /// Label of the starting resource.
    pub from_label: String,
    /// Label of the ending resource.
    pub to_label: String,
    /// Starting endpoint.
    pub from: Endpoint,
    /// Ending endpoint.
    pub to: Endpoint,
    /// The arc's semantic role.
    pub arcrole: Option<String>,
    /// Presentation intent.
    pub show: Show,
    /// Traversal timing.
    pub actuate: Actuate,
    /// Arc title, falling back to the ending resource's title.
    pub title: Option<String>,
}

/// An extended link: the parsed form of one `xlink:type="extended"` element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedLink {
    /// The extended-link element.
    pub element: NodeId,
    /// Semantic role of the link as a whole.
    pub role: Option<String>,
    /// Title attribute of the link.
    pub title: Option<String>,
    /// Remote resources.
    pub locators: Vec<Locator>,
    /// Local resources.
    pub resources: Vec<Resource>,
    /// Traversal rules.
    pub arcs: Vec<ArcRule>,
}

impl ExtendedLink {
    /// Parses the element `el` (which must have `xlink:type="extended"`).
    ///
    /// # Errors
    ///
    /// Propagates attribute-enumeration errors and
    /// [`XLinkError::MissingHref`] for locators without an href.
    pub fn parse(doc: &Document, el: NodeId) -> Result<Self, XLinkError> {
        let attrs = XLinkAttrs::read(doc, el)?;
        let mut link = ExtendedLink {
            element: el,
            role: attrs.role,
            title: attrs.title,
            locators: Vec::new(),
            resources: Vec::new(),
            arcs: Vec::new(),
        };
        for child in doc.child_elements(el) {
            let a = XLinkAttrs::read(doc, child)?;
            match a.link_type {
                Some(LinkType::Locator) => {
                    let href_text = a.href.ok_or_else(|| XLinkError::MissingHref {
                        element: doc
                            .name(child)
                            .map(|q| q.local().to_string())
                            .unwrap_or_default(),
                    })?;
                    link.locators.push(Locator {
                        element: child,
                        label: a.label,
                        href: href_text.parse()?,
                        role: a.role,
                        title: a.title,
                    });
                }
                Some(LinkType::Resource) => link.resources.push(Resource {
                    element: child,
                    label: a.label,
                    role: a.role,
                    title: a.title,
                }),
                Some(LinkType::Arc) => link.arcs.push(ArcRule {
                    element: child,
                    from: a.from,
                    to: a.to,
                    arcrole: a.arcrole,
                    show: a.show.unwrap_or_default(),
                    actuate: a.actuate.unwrap_or_default(),
                    title: a.title,
                }),
                Some(LinkType::Title) | Some(LinkType::None) | None => {}
                Some(other) => {
                    return Err(XLinkError::MisplacedElement {
                        link_type: other.to_string(),
                    })
                }
            }
        }
        Ok(link)
    }

    /// All labels defined by this link's locators and resources, in
    /// document order, deduplicated.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let locator_labels = self.locators.iter().filter_map(|l| l.label.as_deref());
        let resource_labels = self.resources.iter().filter_map(|r| r.label.as_deref());
        for label in locator_labels.chain(resource_labels) {
            if !out.contains(&label) {
                out.push(label);
            }
        }
        out
    }

    fn endpoints_for_label(&self, label: &str) -> Vec<(Endpoint, Option<&str>)> {
        let mut out = Vec::new();
        for l in &self.locators {
            if l.label.as_deref() == Some(label) {
                out.push((Endpoint::Remote(l.href.clone()), l.title.as_deref()));
            }
        }
        for r in &self.resources {
            if r.label.as_deref() == Some(label) {
                out.push((Endpoint::Local(r.element), r.title.as_deref()));
            }
        }
        out
    }

    /// Expands every arc over its label groups into concrete traversals.
    ///
    /// Per XLink 1.0, an omitted `from`/`to` stands for *all* labels in the
    /// link. Traversals are produced in arc order, then from-resource order,
    /// then to-resource order — deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`XLinkError::UndefinedLabel`] when an arc names a label that
    /// no locator or resource defines.
    pub fn traversals(&self) -> Result<Vec<Traversal>, XLinkError> {
        let all_labels = self.labels();
        let mut out = Vec::new();
        for arc in &self.arcs {
            let from_labels: Vec<&str> = match &arc.from {
                Some(l) => {
                    if !all_labels.contains(&l.as_str()) {
                        return Err(XLinkError::UndefinedLabel {
                            label: l.clone(),
                            end: "from",
                        });
                    }
                    vec![l.as_str()]
                }
                None => all_labels.clone(),
            };
            let to_labels: Vec<&str> = match &arc.to {
                Some(l) => {
                    if !all_labels.contains(&l.as_str()) {
                        return Err(XLinkError::UndefinedLabel {
                            label: l.clone(),
                            end: "to",
                        });
                    }
                    vec![l.as_str()]
                }
                None => all_labels.clone(),
            };
            for from_label in &from_labels {
                for (from_ep, _) in self.endpoints_for_label(from_label) {
                    for to_label in &to_labels {
                        for (to_ep, to_title) in self.endpoints_for_label(to_label) {
                            out.push(Traversal {
                                from_label: (*from_label).to_string(),
                                to_label: (*to_label).to_string(),
                                from: from_ep.clone(),
                                to: to_ep.clone(),
                                arcrole: arc.arcrole.clone(),
                                show: arc.show,
                                actuate: arc.actuate,
                                title: arc.title.clone().or_else(|| to_title.map(str::to_string)),
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Validates the link: every arc label defined, no duplicate
    /// (from, to) arc pairs (XLink 1.0 §5.1.3 "arc duplication").
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), XLinkError> {
        self.traversals()?;
        let mut seen = std::collections::HashSet::new();
        for arc in &self.arcs {
            let key = (arc.from.clone(), arc.to.clone());
            if !seen.insert(key) {
                // Duplicate arcs are a SHOULD-level violation; surface them
                // as an undefined-label-style error with context.
                return Err(XLinkError::UndefinedLabel {
                    label: format!(
                        "duplicate arc {}→{}",
                        arc.from.as_deref().unwrap_or("*"),
                        arc.to.as_deref().unwrap_or("*")
                    ),
                    end: "from",
                });
            }
        }
        Ok(())
    }
}

/// Extracts the simple link on `el`, if any.
///
/// Per XLink, an element with an `xlink:href` but no `xlink:type` is treated
/// as a simple link as well.
///
/// # Errors
///
/// Returns [`XLinkError::MissingHref`] when `xlink:type="simple"` is present
/// without an href, and propagates attribute errors.
pub fn simple_link(doc: &Document, el: NodeId) -> Result<Option<SimpleLink>, XLinkError> {
    let attrs = XLinkAttrs::read(doc, el)?;
    let is_simple = matches!(attrs.link_type, Some(LinkType::Simple))
        || (attrs.link_type.is_none() && attrs.href.is_some());
    if !is_simple {
        return Ok(None);
    }
    let href_text = attrs.href.ok_or_else(|| XLinkError::MissingHref {
        element: doc
            .name(el)
            .map(|q| q.local().to_string())
            .unwrap_or_default(),
    })?;
    Ok(Some(SimpleLink {
        element: el,
        href: href_text.parse()?,
        role: attrs.role,
        arcrole: attrs.arcrole,
        title: attrs.title,
        show: attrs.show.unwrap_or_default(),
        actuate: attrs.actuate.unwrap_or_default(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const XLINK: &str = "xmlns:xlink=\"http://www.w3.org/1999/xlink\"";

    fn extended_doc() -> Document {
        Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended" xlink:title="tour">
  <loc xlink:type="locator" xlink:label="painting" xlink:href="guitar.xml" xlink:title="Guitar"/>
  <loc xlink:type="locator" xlink:label="painting" xlink:href="guernica.xml" xlink:title="Guernica"/>
  <loc xlink:type="locator" xlink:label="index" xlink:href="picasso.xml"/>
  <go xlink:type="arc" xlink:from="index" xlink:to="painting" xlink:arcrole="urn:nav:entry"/>
  <go xlink:type="arc" xlink:from="painting" xlink:to="index" xlink:arcrole="urn:nav:up"/>
</links>"#
        ))
        .unwrap()
    }

    #[test]
    fn parses_extended_link() {
        let doc = extended_doc();
        let root = doc.root_element().unwrap();
        let link = ExtendedLink::parse(&doc, root).unwrap();
        assert_eq!(link.locators.len(), 3);
        assert_eq!(link.arcs.len(), 2);
        assert_eq!(link.labels(), vec!["painting", "index"]);
        assert_eq!(link.title.as_deref(), Some("tour"));
    }

    #[test]
    fn arc_expansion_over_label_groups() {
        let doc = extended_doc();
        let root = doc.root_element().unwrap();
        let link = ExtendedLink::parse(&doc, root).unwrap();
        let ts = link.traversals().unwrap();
        // index→painting expands to 1×2, painting→index to 2×1.
        assert_eq!(ts.len(), 4);
        let entry: Vec<_> = ts
            .iter()
            .filter(|t| t.arcrole.as_deref() == Some("urn:nav:entry"))
            .collect();
        assert_eq!(entry.len(), 2);
        assert_eq!(entry[0].to.href().unwrap().document(), "guitar.xml");
        // Title falls back to the ending locator's title.
        assert_eq!(entry[0].title.as_deref(), Some("Guitar"));
    }

    #[test]
    fn omitted_from_to_means_all_labels() {
        let doc = Document::parse(&format!(
            r#"<l {XLINK} xlink:type="extended">
  <r xlink:type="locator" xlink:label="a" xlink:href="a.xml"/>
  <r xlink:type="locator" xlink:label="b" xlink:href="b.xml"/>
  <arc xlink:type="arc"/>
</l>"#
        ))
        .unwrap();
        let link = ExtendedLink::parse(&doc, doc.root_element().unwrap()).unwrap();
        let ts = link.traversals().unwrap();
        assert_eq!(ts.len(), 4); // {a,b} × {a,b}
    }

    #[test]
    fn undefined_label_is_error() {
        let doc = Document::parse(&format!(
            r#"<l {XLINK} xlink:type="extended">
  <r xlink:type="locator" xlink:label="a" xlink:href="a.xml"/>
  <arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>
</l>"#
        ))
        .unwrap();
        let link = ExtendedLink::parse(&doc, doc.root_element().unwrap()).unwrap();
        assert!(matches!(
            link.traversals(),
            Err(XLinkError::UndefinedLabel { label, end: "to" }) if label == "ghost"
        ));
    }

    #[test]
    fn locator_requires_href() {
        let doc = Document::parse(&format!(
            r#"<l {XLINK} xlink:type="extended"><r xlink:type="locator" xlink:label="a"/></l>"#
        ))
        .unwrap();
        assert!(matches!(
            ExtendedLink::parse(&doc, doc.root_element().unwrap()),
            Err(XLinkError::MissingHref { .. })
        ));
    }

    #[test]
    fn local_resources_participate() {
        let doc = Document::parse(&format!(
            r#"<l {XLINK} xlink:type="extended">
  <here xlink:type="resource" xlink:label="src">click me</here>
  <there xlink:type="locator" xlink:label="dst" xlink:href="t.xml"/>
  <arc xlink:type="arc" xlink:from="src" xlink:to="dst"/>
</l>"#
        ))
        .unwrap();
        let link = ExtendedLink::parse(&doc, doc.root_element().unwrap()).unwrap();
        let ts = link.traversals().unwrap();
        assert_eq!(ts.len(), 1);
        assert!(matches!(ts[0].from, Endpoint::Local(_)));
        assert!(matches!(ts[0].to, Endpoint::Remote(_)));
    }

    #[test]
    fn duplicate_arcs_fail_validation() {
        let doc = Document::parse(&format!(
            r#"<l {XLINK} xlink:type="extended">
  <r xlink:type="locator" xlink:label="a" xlink:href="a.xml"/>
  <arc xlink:type="arc" xlink:from="a" xlink:to="a"/>
  <arc xlink:type="arc" xlink:from="a" xlink:to="a"/>
</l>"#
        ))
        .unwrap();
        let link = ExtendedLink::parse(&doc, doc.root_element().unwrap()).unwrap();
        assert!(link.validate().is_err());
    }

    #[test]
    fn simple_link_extraction() {
        let doc = Document::parse(&format!(
            r#"<p {XLINK}><a xlink:type="simple" xlink:href="x.xml#frag" xlink:show="new">go</a></p>"#
        ))
        .unwrap();
        let root = doc.root_element().unwrap();
        let a = doc.child_elements(root).next().unwrap();
        let link = simple_link(&doc, a).unwrap().unwrap();
        assert_eq!(link.href.document(), "x.xml");
        assert_eq!(link.href.fragment(), Some("frag"));
        assert_eq!(link.show, Show::New);
        // The <p> has no XLink markup.
        assert!(simple_link(&doc, root).unwrap().is_none());
    }

    #[test]
    fn bare_href_is_simple_link() {
        let doc = Document::parse(&format!(r#"<a {XLINK} xlink:href="x.xml"/>"#)).unwrap();
        let link = simple_link(&doc, doc.root_element().unwrap()).unwrap();
        assert!(link.is_some());
    }

    #[test]
    fn simple_type_without_href_is_error() {
        let doc = Document::parse(&format!(r#"<a {XLINK} xlink:type="simple"/>"#)).unwrap();
        assert!(matches!(
            simple_link(&doc, doc.root_element().unwrap()),
            Err(XLinkError::MissingHref { .. })
        ));
    }
}
