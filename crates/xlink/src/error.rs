//! Errors raised while interpreting XLink markup.

use std::error::Error as StdError;
use std::fmt;

/// A violation of the XLink 1.0 rules found while reading a document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XLinkError {
    /// `xlink:type` had a value outside the six defined ones.
    InvalidLinkType(String),
    /// `xlink:show` had an unknown value.
    InvalidShow(String),
    /// `xlink:actuate` had an unknown value.
    InvalidActuate(String),
    /// A simple link or locator is missing its `xlink:href`.
    MissingHref {
        /// Element name carrying the XLink markup.
        element: String,
    },
    /// An arc refers to a label no locator/resource in the link defines.
    UndefinedLabel {
        /// The dangling label.
        label: String,
        /// `from` or `to`.
        end: &'static str,
    },
    /// A locator/resource/arc/title appeared outside an extended link.
    MisplacedElement {
        /// The `xlink:type` value of the misplaced element.
        link_type: String,
    },
    /// The href could not be parsed as a URI reference.
    InvalidHref(String),
    /// A document referenced by a link could not be found.
    UnknownDocument(String),
    /// A fragment pointer did not select anything in its target document.
    PointerFailed {
        /// The href whose fragment failed.
        href: String,
        /// Why the pointer failed.
        reason: String,
    },
}

impl fmt::Display for XLinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XLinkError::InvalidLinkType(v) => write!(f, "invalid xlink:type value {v:?}"),
            XLinkError::InvalidShow(v) => write!(f, "invalid xlink:show value {v:?}"),
            XLinkError::InvalidActuate(v) => write!(f, "invalid xlink:actuate value {v:?}"),
            XLinkError::MissingHref { element } => {
                write!(f, "element <{element}> requires an xlink:href")
            }
            XLinkError::UndefinedLabel { label, end } => {
                write!(f, "arc {end}={label:?} names a label with no resource")
            }
            XLinkError::MisplacedElement { link_type } => {
                write!(
                    f,
                    "xlink:type={link_type:?} element is only allowed inside an extended link"
                )
            }
            XLinkError::InvalidHref(h) => write!(f, "invalid href {h:?}"),
            XLinkError::UnknownDocument(d) => write!(f, "linked document {d:?} not found"),
            XLinkError::PointerFailed { href, reason } => {
                write!(f, "pointer in {href:?} failed: {reason}")
            }
        }
    }
}

impl StdError for XLinkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            XLinkError::InvalidLinkType("banana".into()).to_string(),
            "invalid xlink:type value \"banana\""
        );
        assert!(XLinkError::UndefinedLabel {
            label: "x".into(),
            end: "from"
        }
        .to_string()
        .contains("from"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<XLinkError>();
    }
}
