//! Linkbases: documents whose purpose is to carry extended links.
//!
//! The heart of the paper's proposal (§6): keep the data in `picasso.xml`,
//! `avignon.xml`, …, and the *links between them* in a separate `links.xml`.
//! That separate document is, in XLink terms, a **linkbase**. This module
//! loads every extended link (and standalone simple link) from such a
//! document and exposes the combined traversal set.

use crate::attrs::{LinkType, XLinkAttrs, LINKBASE_ARCROLE};
use crate::error::XLinkError;
use crate::href::Href;
use crate::link::{simple_link, ExtendedLink, SimpleLink, Traversal};
use navsep_xml::{Document, NodeId};

/// All XLink content of one document.
///
/// # Examples
///
/// ```
/// use navsep_xml::Document;
/// use navsep_xlink::Linkbase;
///
/// let doc = Document::parse(r#"<links xmlns:xlink="http://www.w3.org/1999/xlink"
///   xlink:type="extended">
///   <l xlink:type="locator" xlink:label="p" xlink:href="guitar.xml"/>
///   <l xlink:type="locator" xlink:label="p" xlink:href="guernica.xml"/>
///   <a xlink:type="arc" xlink:from="p" xlink:to="p" xlink:arcrole="urn:nav:next"/>
/// </links>"#)?;
/// let lb = Linkbase::from_document(&doc, "links.xml")?;
/// assert_eq!(lb.extended_links().len(), 1);
/// assert_eq!(lb.traversals()?.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Linkbase {
    path: String,
    extended: Vec<ExtendedLink>,
    simple: Vec<SimpleLink>,
}

impl Linkbase {
    /// Scans `doc` (stored at site path `path`) for every extended and
    /// simple link.
    ///
    /// # Errors
    ///
    /// Propagates any malformed XLink markup found along the way.
    pub fn from_document(doc: &Document, path: impl Into<String>) -> Result<Self, XLinkError> {
        let mut extended = Vec::new();
        let mut simple = Vec::new();
        let mut inside_extended: Vec<NodeId> = Vec::new();

        for node in doc.descendants(doc.document_node()) {
            if !doc.is_element(node) {
                continue;
            }
            // Skip children of an already-captured extended link.
            if inside_extended
                .iter()
                .any(|&e| is_descendant_of(doc, node, e))
            {
                continue;
            }
            let attrs = XLinkAttrs::read(doc, node)?;
            match attrs.link_type {
                Some(LinkType::Extended) => {
                    extended.push(ExtendedLink::parse(doc, node)?);
                    inside_extended.push(node);
                }
                Some(LinkType::Locator) | Some(LinkType::Arc) | Some(LinkType::Resource) => {
                    return Err(XLinkError::MisplacedElement {
                        link_type: attrs.link_type.unwrap().to_string(),
                    });
                }
                _ => {
                    if let Some(link) = simple_link(doc, node)? {
                        simple.push(link);
                    }
                }
            }
        }
        Ok(Linkbase {
            path: path.into(),
            extended,
            simple,
        })
    }

    /// The site path this linkbase was loaded from.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The extended links, in document order.
    pub fn extended_links(&self) -> &[ExtendedLink] {
        &self.extended
    }

    /// Standalone simple links found outside extended links.
    pub fn simple_links(&self) -> &[SimpleLink] {
        &self.simple
    }

    /// Expands all extended links into concrete traversals, with every
    /// remote href resolved against this linkbase's own path.
    ///
    /// # Errors
    ///
    /// Returns the first arc-expansion error.
    pub fn traversals(&self) -> Result<Vec<Traversal>, XLinkError> {
        let mut out = Vec::new();
        for link in &self.extended {
            for mut t in link.traversals()? {
                if let crate::link::Endpoint::Remote(h) = &t.from {
                    t.from = crate::link::Endpoint::Remote(h.resolve_against(&self.path));
                }
                if let crate::link::Endpoint::Remote(h) = &t.to {
                    t.to = crate::link::Endpoint::Remote(h.resolve_against(&self.path));
                }
                out.push(t);
            }
        }
        Ok(out)
    }

    /// Traversals carrying the given arcrole.
    ///
    /// # Errors
    ///
    /// Returns the first arc-expansion error.
    pub fn traversals_with_arcrole(&self, arcrole: &str) -> Result<Vec<Traversal>, XLinkError> {
        Ok(self
            .traversals()?
            .into_iter()
            .filter(|t| t.arcrole.as_deref() == Some(arcrole))
            .collect())
    }

    /// Hrefs of further linkbases referenced with the reserved linkbase
    /// arcrole (XLink 1.0 §5.1.5) — both from arcs and simple links.
    ///
    /// # Errors
    ///
    /// Returns the first arc-expansion error.
    pub fn referenced_linkbases(&self) -> Result<Vec<Href>, XLinkError> {
        let mut out: Vec<Href> = self
            .traversals_with_arcrole(LINKBASE_ARCROLE)?
            .into_iter()
            .filter_map(|t| t.to.href().cloned())
            .collect();
        for s in &self.simple {
            if s.arcrole.as_deref() == Some(LINKBASE_ARCROLE) {
                out.push(s.href.resolve_against(&self.path));
            }
        }
        out.dedup();
        Ok(out)
    }

    /// Every document path referenced by any traversal endpoint or simple
    /// link, deduplicated — the set the resolver must be able to supply.
    ///
    /// # Errors
    ///
    /// Returns the first arc-expansion error.
    pub fn referenced_documents(&self) -> Result<Vec<String>, XLinkError> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |doc: &str| {
            if !doc.is_empty() && !out.iter().any(|d| d == doc) {
                out.push(doc.to_string());
            }
        };
        for t in self.traversals()? {
            if let Some(h) = t.from.href() {
                push(h.document());
            }
            if let Some(h) = t.to.href() {
                push(h.document());
            }
        }
        for s in &self.simple {
            push(s.href.resolve_against(&self.path).document());
        }
        Ok(out)
    }
}

fn is_descendant_of(doc: &Document, node: NodeId, ancestor: NodeId) -> bool {
    let mut cur = Some(node);
    while let Some(n) = cur {
        if n == ancestor {
            return true;
        }
        cur = doc.parent(n);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const XLINK: &str = "xmlns:xlink=\"http://www.w3.org/1999/xlink\"";

    #[test]
    fn loads_multiple_extended_links() {
        let doc = Document::parse(&format!(
            r#"<linkbase {XLINK}>
  <links xlink:type="extended">
    <l xlink:type="locator" xlink:label="a" xlink:href="a.xml"/>
    <l xlink:type="locator" xlink:label="b" xlink:href="b.xml"/>
    <arc xlink:type="arc" xlink:from="a" xlink:to="b"/>
  </links>
  <links xlink:type="extended">
    <l xlink:type="locator" xlink:label="x" xlink:href="x.xml"/>
    <l xlink:type="locator" xlink:label="y" xlink:href="y.xml"/>
    <arc xlink:type="arc" xlink:from="x" xlink:to="y"/>
  </links>
</linkbase>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        assert_eq!(lb.extended_links().len(), 2);
        assert_eq!(lb.traversals().unwrap().len(), 2);
    }

    #[test]
    fn stray_locator_outside_extended_rejected() {
        let doc = Document::parse(&format!(
            r#"<x {XLINK}><l xlink:type="locator" xlink:href="a.xml"/></x>"#
        ))
        .unwrap();
        assert!(matches!(
            Linkbase::from_document(&doc, "links.xml"),
            Err(XLinkError::MisplacedElement { .. })
        ));
    }

    #[test]
    fn hrefs_resolved_against_linkbase_path() {
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <l xlink:type="locator" xlink:label="a" xlink:href="data/a.xml"/>
  <arc xlink:type="arc" xlink:from="a" xlink:to="a"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "nav/links.xml").unwrap();
        let ts = lb.traversals().unwrap();
        assert_eq!(ts[0].to.href().unwrap().document(), "nav/data/a.xml");
    }

    #[test]
    fn referenced_documents_deduplicated() {
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <l xlink:type="locator" xlink:label="p" xlink:href="a.xml#one"/>
  <l xlink:type="locator" xlink:label="p" xlink:href="a.xml#two"/>
  <l xlink:type="locator" xlink:label="q" xlink:href="b.xml"/>
  <arc xlink:type="arc" xlink:from="p" xlink:to="q"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        assert_eq!(lb.referenced_documents().unwrap(), vec!["a.xml", "b.xml"]);
    }

    #[test]
    fn linkbase_arcrole_discovery() {
        let doc = Document::parse(&format!(
            r#"<x {XLINK}><more xlink:type="simple" xlink:href="other-links.xml"
                 xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/></x>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        let refs = lb.referenced_linkbases().unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].document(), "other-links.xml");
    }

    #[test]
    fn simple_links_collected() {
        let doc = Document::parse(&format!(
            r#"<page {XLINK}><a xlink:href="x.xml">go</a><a xlink:href="y.xml">go</a></page>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "page.xml").unwrap();
        assert_eq!(lb.simple_links().len(), 2);
        assert!(lb.extended_links().is_empty());
    }
}
