//! The XLink global attribute vocabulary.
//!
//! XLink 1.0 defines its markup entirely through *global attributes* in the
//! `http://www.w3.org/1999/xlink` namespace: `type`, `href`, `role`,
//! `arcrole`, `title`, `show`, `actuate`, `label`, `from`, `to`. This module
//! reads them off DOM elements and types their enumerated values.

use crate::error::XLinkError;
use navsep_xml::{Document, NodeId};
use std::fmt;

/// The XLink namespace URI.
pub const XLINK_NS: &str = "http://www.w3.org/1999/xlink";

/// Arcrole identifying a linkbase reference (XLink 1.0 §5.1.5).
pub const LINKBASE_ARCROLE: &str = "http://www.w3.org/1999/xlink/properties/linkbase";

/// Values of `xlink:type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// An entire link expressed on one element (`simple`).
    Simple,
    /// A link expressed by an element with locator/resource/arc children.
    Extended,
    /// A remote resource participating in an extended link.
    Locator,
    /// A traversal rule between labeled resources.
    Arc,
    /// A local resource participating in an extended link.
    Resource,
    /// A human-readable title element.
    Title,
    /// Explicit opt-out (`none`): the element has no XLink meaning.
    None,
}

impl LinkType {
    /// Parses an `xlink:type` value.
    ///
    /// # Errors
    ///
    /// Returns [`XLinkError::InvalidLinkType`] for unknown values.
    pub fn from_value(v: &str) -> Result<Self, XLinkError> {
        match v {
            "simple" => Ok(LinkType::Simple),
            "extended" => Ok(LinkType::Extended),
            "locator" => Ok(LinkType::Locator),
            "arc" => Ok(LinkType::Arc),
            "resource" => Ok(LinkType::Resource),
            "title" => Ok(LinkType::Title),
            "none" => Ok(LinkType::None),
            other => Err(XLinkError::InvalidLinkType(other.to_string())),
        }
    }
}

impl fmt::Display for LinkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LinkType::Simple => "simple",
            LinkType::Extended => "extended",
            LinkType::Locator => "locator",
            LinkType::Arc => "arc",
            LinkType::Resource => "resource",
            LinkType::Title => "title",
            LinkType::None => "none",
        })
    }
}

/// Values of `xlink:show` — what a conforming application should do with the
/// ending resource on traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Show {
    /// Open in a new presentation context (a new window, in 2002 terms).
    New,
    /// Replace the current context — ordinary hyperlink navigation.
    #[default]
    Replace,
    /// Embed the ending resource in place of the link.
    Embed,
    /// Behaviour is application-defined.
    Other,
    /// No behaviour is specified.
    NoneSpecified,
}

impl Show {
    /// Parses an `xlink:show` value.
    ///
    /// # Errors
    ///
    /// Returns [`XLinkError::InvalidShow`] for unknown values.
    pub fn from_value(v: &str) -> Result<Self, XLinkError> {
        match v {
            "new" => Ok(Show::New),
            "replace" => Ok(Show::Replace),
            "embed" => Ok(Show::Embed),
            "other" => Ok(Show::Other),
            "none" => Ok(Show::NoneSpecified),
            other => Err(XLinkError::InvalidShow(other.to_string())),
        }
    }
}

impl fmt::Display for Show {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Show::New => "new",
            Show::Replace => "replace",
            Show::Embed => "embed",
            Show::Other => "other",
            Show::NoneSpecified => "none",
        })
    }
}

/// Values of `xlink:actuate` — when traversal should happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Actuate {
    /// Traverse immediately on loading the starting resource.
    OnLoad,
    /// Traverse when the user requests it (a click).
    #[default]
    OnRequest,
    /// Behaviour is application-defined.
    Other,
    /// No behaviour is specified.
    NoneSpecified,
}

impl Actuate {
    /// Parses an `xlink:actuate` value.
    ///
    /// # Errors
    ///
    /// Returns [`XLinkError::InvalidActuate`] for unknown values.
    pub fn from_value(v: &str) -> Result<Self, XLinkError> {
        match v {
            "onLoad" => Ok(Actuate::OnLoad),
            "onRequest" => Ok(Actuate::OnRequest),
            "other" => Ok(Actuate::Other),
            "none" => Ok(Actuate::NoneSpecified),
            other => Err(XLinkError::InvalidActuate(other.to_string())),
        }
    }
}

impl fmt::Display for Actuate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Actuate::OnLoad => "onLoad",
            Actuate::OnRequest => "onRequest",
            Actuate::Other => "other",
            Actuate::NoneSpecified => "none",
        })
    }
}

/// Reads the raw `xlink:*` attributes from one element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XLinkAttrs {
    /// `xlink:type`, parsed.
    pub link_type: Option<LinkType>,
    /// `xlink:href`, raw.
    pub href: Option<String>,
    /// `xlink:role`.
    pub role: Option<String>,
    /// `xlink:arcrole`.
    pub arcrole: Option<String>,
    /// `xlink:title` (the attribute form).
    pub title: Option<String>,
    /// `xlink:show`, parsed.
    pub show: Option<Show>,
    /// `xlink:actuate`, parsed.
    pub actuate: Option<Actuate>,
    /// `xlink:label`.
    pub label: Option<String>,
    /// `xlink:from`.
    pub from: Option<String>,
    /// `xlink:to`.
    pub to: Option<String>,
}

impl XLinkAttrs {
    /// Extracts the XLink attributes of `element` in `doc`.
    ///
    /// # Errors
    ///
    /// Returns an error when `type`, `show` or `actuate` carry values outside
    /// the recommendation's enumerations.
    pub fn read(doc: &Document, element: NodeId) -> Result<Self, XLinkError> {
        let get = |local: &str| {
            doc.attribute_ns(element, XLINK_NS, local)
                .map(str::to_string)
        };
        let link_type = match get("type") {
            Some(v) => Some(LinkType::from_value(&v)?),
            None => None,
        };
        let show = match get("show") {
            Some(v) => Some(Show::from_value(&v)?),
            None => None,
        };
        let actuate = match get("actuate") {
            Some(v) => Some(Actuate::from_value(&v)?),
            None => None,
        };
        Ok(XLinkAttrs {
            link_type,
            href: get("href"),
            role: get("role"),
            arcrole: get("arcrole"),
            title: get("title"),
            show,
            actuate,
            label: get("label"),
            from: get("from"),
            to: get("to"),
        })
    }

    /// `true` when the element carries any XLink markup at all.
    pub fn is_linked(&self) -> bool {
        self.link_type.is_some() || self.href.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navsep_xml::Document;

    fn parse_one(attrs: &str) -> (Document, NodeId) {
        let doc = Document::parse(&format!(
            "<a xmlns:xlink=\"http://www.w3.org/1999/xlink\" {attrs}/>"
        ))
        .unwrap();
        let root = doc.root_element().unwrap();
        (doc, root)
    }

    #[test]
    fn reads_all_attributes() {
        let (doc, root) = parse_one(
            "xlink:type=\"arc\" xlink:from=\"a\" xlink:to=\"b\" xlink:arcrole=\"urn:next\" \
             xlink:show=\"replace\" xlink:actuate=\"onRequest\" xlink:title=\"Next\"",
        );
        let attrs = XLinkAttrs::read(&doc, root).unwrap();
        assert_eq!(attrs.link_type, Some(LinkType::Arc));
        assert_eq!(attrs.from.as_deref(), Some("a"));
        assert_eq!(attrs.to.as_deref(), Some("b"));
        assert_eq!(attrs.arcrole.as_deref(), Some("urn:next"));
        assert_eq!(attrs.show, Some(Show::Replace));
        assert_eq!(attrs.actuate, Some(Actuate::OnRequest));
        assert_eq!(attrs.title.as_deref(), Some("Next"));
    }

    #[test]
    fn invalid_enumerations_rejected() {
        let (doc, root) = parse_one("xlink:type=\"mega\"");
        assert!(matches!(
            XLinkAttrs::read(&doc, root),
            Err(XLinkError::InvalidLinkType(_))
        ));
        let (doc, root) = parse_one("xlink:show=\"explode\"");
        assert!(matches!(
            XLinkAttrs::read(&doc, root),
            Err(XLinkError::InvalidShow(_))
        ));
        let (doc, root) = parse_one("xlink:actuate=\"never\"");
        assert!(matches!(
            XLinkAttrs::read(&doc, root),
            Err(XLinkError::InvalidActuate(_))
        ));
    }

    #[test]
    fn non_xlink_attributes_ignored() {
        let doc = Document::parse("<a type=\"simple\" href=\"x\"/>").unwrap();
        let root = doc.root_element().unwrap();
        let attrs = XLinkAttrs::read(&doc, root).unwrap();
        assert!(!attrs.is_linked());
    }

    #[test]
    fn defaults_for_show_actuate() {
        assert_eq!(Show::default(), Show::Replace);
        assert_eq!(Actuate::default(), Actuate::OnRequest);
    }

    #[test]
    fn display_matches_lexical_values() {
        assert_eq!(LinkType::Extended.to_string(), "extended");
        assert_eq!(Show::New.to_string(), "new");
        assert_eq!(Actuate::OnLoad.to_string(), "onLoad");
    }
}
