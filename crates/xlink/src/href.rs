//! URI references for `xlink:href`: document part + optional fragment
//! pointer, with relative-reference resolution against a base path.

use crate::error::XLinkError;
use std::fmt;

/// A parsed `xlink:href`: the document being addressed and an optional
/// XPointer fragment.
///
/// navsep works with site-relative paths (there is no network layer in the
/// paper's world of local XML files), so `document` is a path like
/// `picasso.xml` or `/paintings/avignon.xml`, and `fragment` is everything
/// after `#`.
///
/// # Examples
///
/// ```
/// use navsep_xlink::Href;
///
/// let href: Href = "avignon.xml#xpointer(/painting/title)".parse()?;
/// assert_eq!(href.document(), "avignon.xml");
/// assert_eq!(href.fragment(), Some("xpointer(/painting/title)"));
///
/// let same_doc: Href = "#guitar".parse()?;
/// assert!(same_doc.is_same_document());
/// # Ok::<(), navsep_xlink::XLinkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Href {
    document: String,
    fragment: Option<String>,
}

impl Href {
    /// Creates an href from a document path and optional fragment.
    pub fn new(document: impl Into<String>, fragment: Option<String>) -> Self {
        Href {
            document: document.into(),
            fragment,
        }
    }

    /// The document part (empty for same-document references).
    pub fn document(&self) -> &str {
        &self.document
    }

    /// The fragment pointer, without the `#`.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// `true` when the href points into the containing document itself.
    pub fn is_same_document(&self) -> bool {
        self.document.is_empty()
    }

    /// Resolves this (possibly relative) reference against the path of the
    /// document that contains it.
    ///
    /// Handles `.` and `..` segments and absolute (`/…`) targets. The base is
    /// the *containing document's* path, e.g. `links/links.xml`.
    ///
    /// # Examples
    ///
    /// ```
    /// use navsep_xlink::Href;
    ///
    /// let href: Href = "../data/picasso.xml#p1".parse()?;
    /// let abs = href.resolve_against("links/nav/links.xml");
    /// assert_eq!(abs.document(), "links/data/picasso.xml");
    /// assert_eq!(abs.fragment(), Some("p1"));
    /// # Ok::<(), navsep_xlink::XLinkError>(())
    /// ```
    pub fn resolve_against(&self, base_path: &str) -> Href {
        if self.document.is_empty() || self.document.starts_with('/') {
            return self.clone();
        }
        let base_dir = match base_path.rfind('/') {
            Some(idx) => &base_path[..idx],
            None => "",
        };
        let mut segments: Vec<&str> = if base_dir.is_empty() {
            Vec::new()
        } else {
            base_dir.split('/').collect()
        };
        for seg in self.document.split('/') {
            match seg {
                "." | "" => {}
                ".." => {
                    segments.pop();
                }
                s => segments.push(s),
            }
        }
        Href {
            document: segments.join("/"),
            fragment: self.fragment.clone(),
        }
    }
}

impl fmt::Display for Href {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.document)?;
        if let Some(frag) = &self.fragment {
            write!(f, "#{frag}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Href {
    type Err = XLinkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(XLinkError::InvalidHref(s.to_string()));
        }
        if s.contains(char::is_whitespace) {
            return Err(XLinkError::InvalidHref(s.to_string()));
        }
        match s.find('#') {
            Some(idx) => {
                let (doc, frag) = s.split_at(idx);
                let frag = &frag[1..];
                if frag.is_empty() {
                    return Err(XLinkError::InvalidHref(s.to_string()));
                }
                if frag.contains('#') {
                    return Err(XLinkError::InvalidHref(s.to_string()));
                }
                Ok(Href::new(doc, Some(frag.to_string())))
            }
            None => Ok(Href::new(s, None)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        let h: Href = "picasso.xml".parse().unwrap();
        assert_eq!(h.document(), "picasso.xml");
        assert_eq!(h.fragment(), None);

        let h: Href = "picasso.xml#guitar".parse().unwrap();
        assert_eq!(h.fragment(), Some("guitar"));

        let h: Href = "#guitar".parse().unwrap();
        assert!(h.is_same_document());
    }

    #[test]
    fn rejects_bad_hrefs() {
        assert!("".parse::<Href>().is_err());
        assert!("a b.xml".parse::<Href>().is_err());
        assert!("a.xml#".parse::<Href>().is_err());
        assert!("a.xml#x#y".parse::<Href>().is_err());
    }

    #[test]
    fn display_round_trip() {
        for s in ["a.xml", "a.xml#frag", "#frag", "dir/a.xml#element(/1)"] {
            let h: Href = s.parse().unwrap();
            assert_eq!(h.to_string(), s);
        }
    }

    #[test]
    fn relative_resolution() {
        let h: Href = "b.xml".parse().unwrap();
        assert_eq!(h.resolve_against("a.xml").document(), "b.xml");
        assert_eq!(h.resolve_against("sub/a.xml").document(), "sub/b.xml");

        let h: Href = "../up.xml".parse().unwrap();
        assert_eq!(h.resolve_against("sub/dir/a.xml").document(), "sub/up.xml");

        let h: Href = "./same.xml".parse().unwrap();
        assert_eq!(h.resolve_against("sub/a.xml").document(), "sub/same.xml");

        let h: Href = "/abs.xml".parse().unwrap();
        assert_eq!(h.resolve_against("sub/a.xml").document(), "/abs.xml");
    }

    #[test]
    fn same_document_resolution_is_identity() {
        let h: Href = "#frag".parse().unwrap();
        let r = h.resolve_against("deep/path/doc.xml");
        assert!(r.is_same_document());
        assert_eq!(r.fragment(), Some("frag"));
    }
}
