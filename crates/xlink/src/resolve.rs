//! Cross-document resolution of traversal endpoints.
//!
//! A [`Linkbase`] yields traversals whose endpoints are hrefs like
//! `picasso.xml#xpointer(//painting[@id='guitar'])`. This module turns those
//! into concrete `(document, node)` pairs by consulting a
//! [`DocumentProvider`] — the role a browser's fetch layer would play, had
//! 2002 browsers supported XLink (the paper's stated blocker).

use crate::error::XLinkError;
use crate::href::Href;
use crate::link::{Endpoint, Traversal};
use crate::linkbase::Linkbase;
use navsep_xml::{Document, NodeId};
use std::collections::BTreeMap;

/// Supplies documents by site path. Implemented by in-memory maps here and
/// by `navsep-web`'s `Site`.
pub trait DocumentProvider {
    /// Returns the document stored at `path`, if any.
    fn document(&self, path: &str) -> Option<&Document>;
}

impl DocumentProvider for BTreeMap<String, Document> {
    fn document(&self, path: &str) -> Option<&Document> {
        self.get(path)
    }
}

/// A fully resolved traversal endpoint: which document, which node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedEndpoint {
    /// Site path of the containing document; empty for local resources.
    pub document: String,
    /// The selected node (document root when no fragment was given).
    pub node: NodeId,
    /// The original href, for diagnostics (absent for local resources).
    pub href: Option<Href>,
}

/// A traversal with both endpoints resolved to nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedTraversal {
    /// The unresolved traversal (labels, arcrole, show/actuate, title).
    pub traversal: Traversal,
    /// Resolved starting endpoint.
    pub from: ResolvedEndpoint,
    /// Resolved ending endpoint.
    pub to: ResolvedEndpoint,
}

/// Resolves endpoints against a [`DocumentProvider`].
#[derive(Debug)]
pub struct Resolver<'p, P: DocumentProvider + ?Sized> {
    provider: &'p P,
    linkbase_path: String,
}

impl<'p, P: DocumentProvider + ?Sized> Resolver<'p, P> {
    /// Creates a resolver reading documents from `provider`; `linkbase_path`
    /// is the path of the linkbase whose traversals will be resolved (used
    /// for same-document references).
    pub fn new(provider: &'p P, linkbase_path: impl Into<String>) -> Self {
        Resolver {
            provider,
            linkbase_path: linkbase_path.into(),
        }
    }

    /// Resolves one endpoint.
    ///
    /// # Errors
    ///
    /// * [`XLinkError::UnknownDocument`] when the href names a document the
    ///   provider cannot supply;
    /// * [`XLinkError::PointerFailed`] when the fragment selects nothing.
    pub fn resolve_endpoint(&self, ep: &Endpoint) -> Result<ResolvedEndpoint, XLinkError> {
        match ep {
            Endpoint::Local(node) => Ok(ResolvedEndpoint {
                document: self.linkbase_path.clone(),
                node: *node,
                href: None,
            }),
            Endpoint::Remote(href) => {
                let doc_path = if href.is_same_document() {
                    self.linkbase_path.clone()
                } else {
                    href.document().to_string()
                };
                let doc = self
                    .provider
                    .document(&doc_path)
                    .ok_or_else(|| XLinkError::UnknownDocument(doc_path.clone()))?;
                let node = match href.fragment() {
                    Some(frag) => navsep_xpointer::resolve_first(doc, frag).map_err(|e| {
                        XLinkError::PointerFailed {
                            href: href.to_string(),
                            reason: e.to_string(),
                        }
                    })?,
                    None => doc.require_root().map_err(|e| XLinkError::PointerFailed {
                        href: href.to_string(),
                        reason: e.to_string(),
                    })?,
                };
                Ok(ResolvedEndpoint {
                    document: doc_path,
                    node,
                    href: Some(href.clone()),
                })
            }
        }
    }

    /// Resolves every traversal of `linkbase`.
    ///
    /// # Errors
    ///
    /// Fails fast on the first unresolvable endpoint; use
    /// [`resolve_lenient`](Resolver::resolve_lenient) to collect partial
    /// results instead.
    pub fn resolve(&self, linkbase: &Linkbase) -> Result<Vec<ResolvedTraversal>, XLinkError> {
        let mut out = Vec::new();
        for t in linkbase.traversals()? {
            let from = self.resolve_endpoint(&t.from)?;
            let to = self.resolve_endpoint(&t.to)?;
            out.push(ResolvedTraversal {
                traversal: t,
                from,
                to,
            });
        }
        Ok(out)
    }

    /// Like [`resolve`](Resolver::resolve), but skips failing traversals,
    /// returning them separately. Mirrors how a user agent keeps working
    /// when one link in a page is broken.
    ///
    /// # Errors
    ///
    /// Only arc-expansion errors (malformed linkbase) abort; per-traversal
    /// resolution failures are returned in the second vector.
    pub fn resolve_lenient(
        &self,
        linkbase: &Linkbase,
    ) -> Result<(Vec<ResolvedTraversal>, Vec<XLinkError>), XLinkError> {
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        for t in linkbase.traversals()? {
            let from = match self.resolve_endpoint(&t.from) {
                Ok(e) => e,
                Err(e) => {
                    failed.push(e);
                    continue;
                }
            };
            let to = match self.resolve_endpoint(&t.to) {
                Ok(e) => e,
                Err(e) => {
                    failed.push(e);
                    continue;
                }
            };
            ok.push(ResolvedTraversal {
                traversal: t,
                from,
                to,
            });
        }
        Ok((ok, failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XLINK: &str = "xmlns:xlink=\"http://www.w3.org/1999/xlink\"";

    fn provider() -> BTreeMap<String, Document> {
        let mut m = BTreeMap::new();
        m.insert(
            "picasso.xml".to_string(),
            Document::parse(
                r#"<painter id="picasso"><painting id="guitar"/><painting id="guernica"/></painter>"#,
            )
            .unwrap(),
        );
        m.insert(
            "avignon.xml".to_string(),
            Document::parse(r#"<painting id="avignon"><title>Les Demoiselles</title></painting>"#)
                .unwrap(),
        );
        m
    }

    fn linkbase(provider_docs: &BTreeMap<String, Document>) -> (Document, Linkbase) {
        let _ = provider_docs;
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <l xlink:type="locator" xlink:label="painter" xlink:href="picasso.xml"/>
  <l xlink:type="locator" xlink:label="work" xlink:href="picasso.xml#guitar"/>
  <l xlink:type="locator" xlink:label="work" xlink:href="avignon.xml"/>
  <arc xlink:type="arc" xlink:from="painter" xlink:to="work" xlink:arcrole="urn:nav:index"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        (doc, lb)
    }

    #[test]
    fn resolves_documents_and_fragments() {
        let docs = provider();
        let (_lbdoc, lb) = linkbase(&docs);
        let resolver = Resolver::new(&docs, "links.xml");
        let resolved = resolver.resolve(&lb).unwrap();
        assert_eq!(resolved.len(), 2);
        // First target: fragment #guitar inside picasso.xml.
        let guitar = &resolved[0].to;
        assert_eq!(guitar.document, "picasso.xml");
        let pdoc = docs.document("picasso.xml").unwrap();
        assert_eq!(pdoc.attribute(guitar.node, "id"), Some("guitar"));
        // Second target: whole avignon.xml (root element).
        let avignon = &resolved[1].to;
        assert_eq!(avignon.document, "avignon.xml");
        let adoc = docs.document("avignon.xml").unwrap();
        assert_eq!(adoc.attribute(avignon.node, "id"), Some("avignon"));
    }

    #[test]
    fn unknown_document_fails() {
        let docs = provider();
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <l xlink:type="locator" xlink:label="x" xlink:href="ghost.xml"/>
  <arc xlink:type="arc" xlink:from="x" xlink:to="x"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        let resolver = Resolver::new(&docs, "links.xml");
        assert!(matches!(
            resolver.resolve(&lb),
            Err(XLinkError::UnknownDocument(d)) if d == "ghost.xml"
        ));
    }

    #[test]
    fn failed_pointer_reported() {
        let docs = provider();
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <l xlink:type="locator" xlink:label="x" xlink:href="picasso.xml#missing"/>
  <arc xlink:type="arc" xlink:from="x" xlink:to="x"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        let resolver = Resolver::new(&docs, "links.xml");
        assert!(matches!(
            resolver.resolve(&lb),
            Err(XLinkError::PointerFailed { .. })
        ));
    }

    #[test]
    fn lenient_resolution_collects_failures() {
        let docs = provider();
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <l xlink:type="locator" xlink:label="good" xlink:href="picasso.xml"/>
  <l xlink:type="locator" xlink:label="bad" xlink:href="ghost.xml"/>
  <arc xlink:type="arc" xlink:from="good" xlink:to="good"/>
  <arc xlink:type="arc" xlink:from="good" xlink:to="bad"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        let resolver = Resolver::new(&docs, "links.xml");
        let (ok, failed) = resolver.resolve_lenient(&lb).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(failed.len(), 1);
    }

    #[test]
    fn local_resource_endpoint_resolves_to_linkbase() {
        let docs = provider();
        let doc = Document::parse(&format!(
            r#"<links {XLINK} xlink:type="extended">
  <here xlink:type="resource" xlink:label="src">from here</here>
  <l xlink:type="locator" xlink:label="dst" xlink:href="picasso.xml"/>
  <arc xlink:type="arc" xlink:from="src" xlink:to="dst"/>
</links>"#
        ))
        .unwrap();
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        let resolver = Resolver::new(&docs, "links.xml");
        let resolved = resolver.resolve(&lb).unwrap();
        assert_eq!(resolved[0].from.document, "links.xml");
        assert!(resolved[0].from.href.is_none());
    }
}
