//! # navsep-xlink — links as a separate document
//!
//! An XLink 1.0 processor: the global attribute vocabulary, simple and
//! extended links, arc expansion over label groups, linkbase loading, and
//! cross-document endpoint resolution via XPointer.
//!
//! This crate is the concrete mechanism behind the paper's §6 proposal:
//! *"we can obtain data in one or more XML files, on the one hand, and links
//! in another XML file, on the other hand."* The "another XML file" is a
//! [`Linkbase`]; the navigation weaver in `navsep-aspect`/`navsep-core`
//! consumes its [`Traversal`]s.
//!
//! ## Quick start
//!
//! ```
//! use navsep_xml::Document;
//! use navsep_xlink::{Linkbase, Resolver};
//! use std::collections::BTreeMap;
//!
//! // Data lives in its own files…
//! let mut site = BTreeMap::new();
//! site.insert(
//!     "picasso.xml".to_string(),
//!     Document::parse(r#"<painter><painting id="guitar"/></painter>"#)?,
//! );
//!
//! // …links live in links.xml (the linkbase).
//! let links = Document::parse(r#"<links xmlns:xlink="http://www.w3.org/1999/xlink"
//!     xlink:type="extended">
//!   <l xlink:type="locator" xlink:label="painter" xlink:href="picasso.xml"/>
//!   <l xlink:type="locator" xlink:label="work" xlink:href="picasso.xml#guitar"/>
//!   <go xlink:type="arc" xlink:from="painter" xlink:to="work"/>
//! </links>"#)?;
//!
//! let lb = Linkbase::from_document(&links, "links.xml")?;
//! let resolved = Resolver::new(&site, "links.xml").resolve(&lb)?;
//! assert_eq!(resolved.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod error;
pub mod href;
pub mod link;
pub mod linkbase;
pub mod resolve;

pub use attrs::{Actuate, LinkType, Show, XLinkAttrs, LINKBASE_ARCROLE, XLINK_NS};
pub use error::XLinkError;
pub use href::Href;
pub use link::{
    simple_link, ArcRule, Endpoint, ExtendedLink, Locator, Resource, SimpleLink, Traversal,
};
pub use linkbase::Linkbase;
pub use resolve::{DocumentProvider, ResolvedEndpoint, ResolvedTraversal, Resolver};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Linkbase>();
        assert_send_sync::<Traversal>();
        assert_send_sync::<Href>();
        assert_send_sync::<XLinkError>();
    }
}
