//! Property-based tests for XLink arc expansion and href resolution.

use navsep_xlink::{ExtendedLink, Href, Linkbase};
use navsep_xml::Document;
use proptest::prelude::*;

const XLINK: &str = "xmlns:xlink=\"http://www.w3.org/1999/xlink\"";

/// Builds an extended link with `groups[i]` locators labeled `g{i}`, plus
/// one arc per (from, to) pair given as indices.
fn link_doc(groups: &[usize], arcs: &[(usize, usize)]) -> Document {
    let mut body = String::new();
    for (gi, &count) in groups.iter().enumerate() {
        for k in 0..count {
            body.push_str(&format!(
                "<l xlink:type=\"locator\" xlink:label=\"g{gi}\" xlink:href=\"doc-{gi}-{k}.xml\"/>\n"
            ));
        }
    }
    for &(f, t) in arcs {
        body.push_str(&format!(
            "<a xlink:type=\"arc\" xlink:from=\"g{f}\" xlink:to=\"g{t}\"/>\n"
        ));
    }
    Document::parse(&format!(
        "<links {XLINK} xlink:type=\"extended\">\n{body}</links>"
    ))
    .expect("generated link is well-formed")
}

proptest! {
    /// Arc expansion count is exactly Σ |from group| × |to group|.
    #[test]
    fn expansion_count_is_group_product(
        groups in proptest::collection::vec(1usize..5, 1..4),
        arc_pairs in proptest::collection::vec((0usize..4, 0usize..4), 0..6),
    ) {
        let arcs: Vec<(usize, usize)> = arc_pairs
            .into_iter()
            .map(|(f, t)| (f % groups.len(), t % groups.len()))
            .collect();
        let doc = link_doc(&groups, &arcs);
        let link = ExtendedLink::parse(&doc, doc.root_element().unwrap()).unwrap();
        let expected: usize = arcs.iter().map(|&(f, t)| groups[f] * groups[t]).sum();
        prop_assert_eq!(link.traversals().unwrap().len(), expected);
    }

    /// An omitted from/to expands over every label.
    #[test]
    fn wildcard_arc_expands_over_all(groups in proptest::collection::vec(1usize..4, 1..4)) {
        let doc = {
            let mut body = String::new();
            for (gi, &count) in groups.iter().enumerate() {
                for k in 0..count {
                    body.push_str(&format!(
                        "<l xlink:type=\"locator\" xlink:label=\"g{gi}\" xlink:href=\"d{gi}-{k}.xml\"/>"
                    ));
                }
            }
            body.push_str("<a xlink:type=\"arc\"/>");
            Document::parse(&format!(
                "<links {XLINK} xlink:type=\"extended\">{body}</links>"
            ))
            .unwrap()
        };
        let link = ExtendedLink::parse(&doc, doc.root_element().unwrap()).unwrap();
        let total: usize = groups.iter().sum();
        prop_assert_eq!(link.traversals().unwrap().len(), total * total);
    }

    /// Href display/parse round trip.
    #[test]
    fn href_round_trips(doc_part in "[a-z]{1,8}(\\.xml)?", frag in proptest::option::of("[a-z]{1,8}")) {
        let text = match &frag {
            Some(f) => format!("{doc_part}#{f}"),
            None => doc_part.clone(),
        };
        let href: Href = text.parse().unwrap();
        prop_assert_eq!(href.to_string(), text);
    }

    /// Resolution against a base is idempotent: resolving an already
    /// resolved href against the same base changes nothing more.
    #[test]
    fn resolution_is_idempotent(
        base_dirs in proptest::collection::vec("[a-z]{1,4}", 0..3),
        ups in 0usize..3,
        target in "[a-z]{1,6}",
    ) {
        let base = if base_dirs.is_empty() {
            "base.xml".to_string()
        } else {
            format!("{}/base.xml", base_dirs.join("/"))
        };
        let rel = format!("{}{}.xml", "../".repeat(ups), target);
        let href: Href = rel.parse().unwrap();
        let once = href.resolve_against(&base);
        let twice = once.resolve_against(&base);
        // A resolved path with no leading ../ segments is a fixed point when
        // it no longer escapes the base directory.
        if !once.document().starts_with("..") {
            let redo: Href = once.document().parse().unwrap();
            let expected = redo.resolve_against(&base);
            prop_assert_eq!(twice.document(), expected.document());
        }
    }

    /// A linkbase built from any set of extended links reports referenced
    /// documents without duplicates.
    #[test]
    fn referenced_documents_unique(groups in proptest::collection::vec(1usize..4, 1..3)) {
        let doc = link_doc(&groups, &[(0, 0)]);
        let lb = Linkbase::from_document(&doc, "links.xml").unwrap();
        let docs = lb.referenced_documents().unwrap();
        let mut dedup = docs.clone();
        dedup.dedup();
        prop_assert_eq!(docs.len(), {
            let mut sorted = dedup.clone();
            sorted.sort();
            sorted.dedup();
            sorted.len()
        });
    }
}
