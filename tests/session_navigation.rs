//! End-to-end navigation: woven site, concurrent server, browsing sessions
//! with contexts and history (experiment T3's substrate).

use navsep::core::museum::{museum_navigation, paper_museum};
use navsep::core::spec::{contextual_spec, paper_spec};
use navsep::core::{separated_sources, weave_separated};
use navsep::hypermodel::AccessStructureKind;
use navsep::web::{NavigationSession, Request, ServerPool, SiteHandler};
use std::sync::Arc;

fn woven_site(two_families: bool) -> navsep::web::Site {
    let store = paper_museum();
    let nav = museum_navigation();
    let spec = if two_families {
        contextual_spec(AccessStructureKind::IndexedGuidedTour)
    } else {
        paper_spec(AccessStructureKind::IndexedGuidedTour)
    };
    weave_separated(&separated_sources(&store, &nav, &spec).unwrap())
        .unwrap()
        .site
}

#[test]
fn full_tour_through_the_woven_site() {
    let mut s = NavigationSession::new(SiteHandler::new(woven_site(false)));
    s.visit("picasso.html").unwrap();
    s.follow("Guitar").unwrap();
    assert_eq!(s.current_context(), Some("by-painter:picasso"));
    // Walk the guided tour to the end.
    s.follow_rel("next").unwrap();
    assert_eq!(s.current_path(), Some("guernica.html"));
    s.follow_rel("next").unwrap();
    assert_eq!(s.current_path(), Some("avignon.html"));
    // Last member: no next.
    assert!(s.follow_rel("next").is_err());
    // Back to the index from anywhere.
    s.follow_rel("up").unwrap();
    assert_eq!(s.current_path(), Some("picasso.html"));
    // History is intact all the way back.
    s.back().unwrap(); // avignon
    s.back().unwrap(); // guernica
    s.back().unwrap(); // guitar
    s.back().unwrap(); // picasso
    assert_eq!(s.current_path(), Some("picasso.html"));
}

#[test]
fn context_dependent_next_on_the_same_page() {
    let site = woven_site(true);
    // Via the author.
    let mut s = NavigationSession::new(SiteHandler::new(site.clone()));
    s.visit("picasso.html").unwrap();
    s.follow("Guitar").unwrap();
    let ctx = s.current_context().unwrap().to_string();
    assert_eq!(ctx, "by-painter:picasso");
    let next = s
        .current_page()
        .unwrap()
        .links
        .iter()
        .find(|l| l.rel.as_deref() == Some("next") && l.context.as_deref() == Some(&ctx))
        .unwrap()
        .clone();
    s.follow_link(&next).unwrap();
    assert_eq!(s.current_path(), Some("guernica.html"));

    // Via the movement: same page, different Next.
    let mut s = NavigationSession::new(SiteHandler::new(site));
    s.visit("cubism.html").unwrap();
    s.follow("Guitar").unwrap();
    let ctx = s.current_context().unwrap().to_string();
    assert_eq!(ctx, "by-movement:cubism");
    let next = s
        .current_page()
        .unwrap()
        .links
        .iter()
        .find(|l| l.rel.as_deref() == Some("next") && l.context.as_deref() == Some(&ctx))
        .unwrap()
        .clone();
    s.follow_link(&next).unwrap();
    assert_eq!(s.current_path(), Some("avignon.html"));
}

#[test]
fn guernica_absent_from_movement_context() {
    // Guernica is Surrealism, not Cubism: the cubism index must not list it.
    let site = woven_site(true);
    let mut s = NavigationSession::new(SiteHandler::new(site));
    s.visit("cubism.html").unwrap();
    let page = s.current_page().unwrap();
    assert!(page.link_by_text("Guitar").is_some());
    assert!(page.link_by_text("Guernica").is_none());
}

#[test]
fn concurrent_sessions_share_one_pool() {
    let handler = Arc::new(SiteHandler::new(woven_site(false)));
    let pool = ServerPool::start(Arc::clone(&handler), 4);
    // Hammer the pool from several threads while sessions browse.
    let mut threads = Vec::new();
    for _ in 0..4 {
        let handler = Arc::clone(&handler);
        threads.push(std::thread::spawn(move || {
            let mut s = NavigationSession::new(handler);
            s.visit("picasso.html").unwrap();
            s.follow("Guitar").unwrap();
            s.follow_rel("next").unwrap();
            s.current_path().unwrap().to_string()
        }));
    }
    for _ in 0..32 {
        assert!(pool
            .request_sync(Request::get("guitar.html"))
            .status()
            .is_success());
    }
    for t in threads {
        assert_eq!(t.join().unwrap(), "guernica.html");
    }
    pool.shutdown();
    assert!(handler.requests_served() >= 32 + 4 * 3);
}

#[test]
fn republish_switches_access_structure_live() {
    // The separated discipline makes the requirement change a re-weave:
    // publish() swaps the site under the same handler.
    let store = paper_museum();
    let nav = museum_navigation();
    let v1 = weave_separated(
        &separated_sources(&store, &nav, &paper_spec(AccessStructureKind::Index)).unwrap(),
    )
    .unwrap()
    .site;
    let v2 = weave_separated(
        &separated_sources(
            &store,
            &nav,
            &paper_spec(AccessStructureKind::IndexedGuidedTour),
        )
        .unwrap(),
    )
    .unwrap()
    .site;

    let handler = Arc::new(SiteHandler::new(v1));
    let mut s = NavigationSession::new(Arc::clone(&handler));
    s.visit("guitar.html").unwrap();
    assert!(s.follow_rel("next").is_err(), "v1 is Index-only");

    handler.publish(v2);
    s.visit("guitar.html").unwrap();
    s.follow_rel("next").unwrap();
    assert_eq!(s.current_path(), Some("guernica.html"));
}
