//! Experiment F6: the woven site is DOM-equivalent to the tangled baseline
//! for every access structure, on the paper corpus and at scale.

use navsep::core::museum::{generated_museum, museum_navigation, paper_museum};
use navsep::core::spec::{contextual_spec, paper_spec};
use navsep::core::{assert_site_equivalent, separated_sources, tangled_site, weave_separated};
use navsep::hypermodel::AccessStructureKind;

fn check(store: &navsep::hypermodel::InstanceStore, spec: &navsep::core::SiteSpec) {
    let nav = museum_navigation();
    let tangled = tangled_site(store, &nav, spec).expect("tangled generation");
    let sources = separated_sources(store, &nav, spec).expect("separated authoring");
    let woven = weave_separated(&sources).expect("weaving");
    if let Err(diff) = assert_site_equivalent(&tangled, &woven.site) {
        panic!("tangled and woven sites differ: {diff}");
    }
}

#[test]
fn paper_corpus_index() {
    check(&paper_museum(), &paper_spec(AccessStructureKind::Index));
}

#[test]
fn paper_corpus_guided_tour() {
    check(
        &paper_museum(),
        &paper_spec(AccessStructureKind::GuidedTour),
    );
}

#[test]
fn paper_corpus_indexed_guided_tour() {
    check(
        &paper_museum(),
        &paper_spec(AccessStructureKind::IndexedGuidedTour),
    );
}

#[test]
fn paper_corpus_two_families() {
    check(
        &paper_museum(),
        &contextual_spec(AccessStructureKind::IndexedGuidedTour),
    );
}

#[test]
fn scaled_museum_equivalence() {
    let store = generated_museum(5, 8, 3, 7);
    check(&store, &paper_spec(AccessStructureKind::IndexedGuidedTour));
    check(&store, &contextual_spec(AccessStructureKind::Index));
}
