//! Cross-crate property suites: diff algebra, access-structure invariants,
//! linkbase round-trips, and tangled/woven equivalence over random corpora.

use navsep::core::museum::{generated_museum, museum_navigation};
use navsep::core::spec::paper_spec;
use navsep::core::{
    assert_site_equivalent, diff_lines, myers_distance, separated_sources, tangled_site,
    weave_separated,
};
use navsep::hypermodel::{AccessGraph, AccessStructureKind, Member};
use navsep::xlink::Linkbase;
use proptest::prelude::*;

fn lines_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-c]{0,3}", 0..24)
}

proptest! {
    /// diff(a, a) = 0.
    #[test]
    fn diff_of_identical_is_zero(lines in lines_strategy()) {
        let text = lines.join("\n");
        let d = diff_lines(&text, &text);
        prop_assert!(d.is_unchanged());
    }

    /// added − removed always equals the length difference.
    #[test]
    fn diff_balances_lengths(a in lines_strategy(), b in lines_strategy()) {
        let ta = a.join("\n");
        let tb = b.join("\n");
        let d = diff_lines(&ta, &tb);
        let la = ta.lines().count() as isize;
        let lb = tb.lines().count() as isize;
        prop_assert_eq!(d.added as isize - d.removed as isize, lb - la);
        // And the edit script never exceeds delete-all + insert-all.
        prop_assert!(d.total() <= (la + lb) as usize);
    }

    /// Swapping the inputs swaps adds and removes.
    #[test]
    fn diff_is_antisymmetric(a in lines_strategy(), b in lines_strategy()) {
        let ta = a.join("\n");
        let tb = b.join("\n");
        let fwd = diff_lines(&ta, &tb);
        let rev = diff_lines(&tb, &ta);
        prop_assert_eq!(fwd.added, rev.removed);
        prop_assert_eq!(fwd.removed, rev.added);
    }

    /// Myers distance agrees with a quadratic LCS reference.
    #[test]
    fn myers_matches_lcs_reference(a in lines_strategy(), b in lines_strategy()) {
        let lcs = lcs_len(&a, &b);
        let expected = (a.len() - lcs) + (b.len() - lcs);
        prop_assert_eq!(myers_distance(&a, &b), expected);
    }

    /// Access graph link counts follow closed forms.
    #[test]
    fn access_graph_link_counts(n in 0usize..24) {
        let members: Vec<Member> =
            (0..n).map(|i| Member::new(format!("m{i}"), format!("M{i}"))).collect();
        let index = AccessGraph::build(AccessStructureKind::Index, &members);
        prop_assert_eq!(index.len(), 2 * n);
        let tour = AccessGraph::build(AccessStructureKind::GuidedTour, &members);
        let tour_expected = if n == 0 { 0 } else { 1 + 2 * (n - 1) };
        prop_assert_eq!(tour.len(), tour_expected);
        let igt = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &members);
        prop_assert_eq!(igt.len(), index.len() + tour.len());
    }

    /// Every member's outgoing links are consistent with its position.
    #[test]
    fn member_degree_matches_position(n in 1usize..16) {
        let members: Vec<Member> =
            (0..n).map(|i| Member::new(format!("m{i}"), format!("M{i}"))).collect();
        let g = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &members);
        for (i, m) in members.iter().enumerate() {
            let mut expected = 1; // up
            if i > 0 { expected += 1 } // prev
            if i + 1 < n { expected += 1 } // next
            prop_assert_eq!(g.outgoing_of_member(&m.slug).len(), expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invariant at random scales: tangled ≡ woven.
    #[test]
    fn tangled_equals_woven_at_random_scales(
        painters in 1usize..4,
        per in 1usize..6,
        seed in 0u64..1000,
        access_pick in 0u8..3,
    ) {
        let access = match access_pick {
            0 => AccessStructureKind::Index,
            1 => AccessStructureKind::GuidedTour,
            _ => AccessStructureKind::IndexedGuidedTour,
        };
        let store = generated_museum(painters, per, 2, seed);
        let nav = museum_navigation();
        let spec = paper_spec(access);
        let tangled = tangled_site(&store, &nav, &spec).unwrap();
        let woven = weave_separated(&separated_sources(&store, &nav, &spec).unwrap()).unwrap();
        prop_assert!(assert_site_equivalent(&tangled, &woven.site).is_ok());
    }

    /// The generated linkbase always reparses to the same traversal count,
    /// and its traversal count follows the closed form.
    #[test]
    fn linkbase_round_trip(per in 1usize..12, seed in 0u64..100) {
        let store = generated_museum(1, per, 2, seed);
        let nav = museum_navigation();
        let sources = separated_sources(
            &store, &nav, &paper_spec(AccessStructureKind::IndexedGuidedTour)).unwrap();
        let doc = sources.get("links.xml").unwrap().document().unwrap();
        let lb = Linkbase::from_document(doc, "links.xml").unwrap();
        let expected = 2 * per + 1 + 2 * (per - 1); // entries+ups, start, next+prev
        prop_assert_eq!(lb.traversals().unwrap().len(), expected);
        // Serialize → reparse → same count.
        let text = doc.to_xml_string();
        let reparsed = navsep::xml::Document::parse(&text).unwrap();
        let lb2 = Linkbase::from_document(&reparsed, "links.xml").unwrap();
        prop_assert_eq!(lb2.traversals().unwrap().len(), expected);
    }
}

/// Quadratic LCS reference implementation for the Myers property.
fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()]
}
