//! Fast workspace smoke test: the paper's headline invariant on the fixed
//! museum fixture, in one cheap assertion. The full per-access-structure
//! and scaled-corpus equivalence coverage lives in `weave_equivalence.rs`;
//! this file exists so refactors get an immediate signal even when only a
//! subset of the suite is run.

use navsep::core::museum::{museum_navigation, paper_museum};
use navsep::core::spec::paper_spec;
use navsep::core::{assert_site_equivalent, separated_sources, tangled_site, weave_separated};
use navsep::hypermodel::AccessStructureKind;

/// `tangled_site` ≡ `weave_separated` on `paper_museum()`, and the woven
/// site is non-trivial.
#[test]
fn tangled_equals_woven_on_paper_museum() {
    let store = paper_museum();
    let nav = museum_navigation();
    let spec = paper_spec(AccessStructureKind::IndexedGuidedTour);
    let tangled = tangled_site(&store, &nav, &spec).expect("tangled generation succeeds");
    let woven = weave_separated(&separated_sources(&store, &nav, &spec).expect("authoring"))
        .expect("weaving succeeds");
    assert_site_equivalent(&tangled, &woven.site)
        .unwrap_or_else(|e| panic!("tangled and woven sites diverge: {e}"));
    assert!(
        woven.site.len() > 1,
        "woven site should hold more than a single page, got {}",
        woven.site.len()
    );
}
