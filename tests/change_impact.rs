//! Experiment T1 as assertions: the access-structure switch touches every
//! context page under tangled authoring and exactly one file (the linkbase)
//! under separated authoring — at every scale.

use navsep::core::museum::{generated_museum, museum_navigation};
use navsep::core::spec::paper_spec;
use navsep::core::{separated_sources, tangled_site, FileStatus, ImpactReport};
use navsep::hypermodel::AccessStructureKind;

fn impact(n: usize, separated: bool) -> ImpactReport {
    let store = generated_museum(1, n, 2, 99);
    let nav = museum_navigation();
    let v1 = paper_spec(AccessStructureKind::Index);
    let v2 = paper_spec(AccessStructureKind::IndexedGuidedTour);
    if separated {
        ImpactReport::between(
            &separated_sources(&store, &nav, &v1).unwrap().to_file_map(),
            &separated_sources(&store, &nav, &v2).unwrap().to_file_map(),
        )
    } else {
        ImpactReport::between(
            &tangled_site(&store, &nav, &v1).unwrap().to_file_map(),
            &tangled_site(&store, &nav, &v2).unwrap().to_file_map(),
        )
    }
}

#[test]
fn tangled_touches_every_context_page() {
    for n in [3usize, 10, 50] {
        let r = impact(n, false);
        // All N member pages + the painter page change; CSS does not.
        assert_eq!(r.files_touched, n + 1, "N={n}");
        assert!(r.lines_added > 0);
        assert_eq!(r.lines_removed, 0, "the switch only adds navigation");
    }
}

#[test]
fn separated_touches_only_the_linkbase() {
    for n in [3usize, 10, 50] {
        let r = impact(n, true);
        assert_eq!(r.files_touched, 1, "N={n}");
        let touched: Vec<&str> = r.touched_files().map(|f| f.path.as_str()).collect();
        assert_eq!(touched, ["links.xml"], "N={n}");
        assert!(r.touched_files().all(|f| f.status == FileStatus::Modified));
    }
}

#[test]
fn tangled_impact_grows_linearly() {
    let small = impact(10, false);
    let large = impact(100, false);
    // 10x the context ⇒ ~10x the files touched (101 vs 11).
    assert_eq!(small.files_touched, 11);
    assert_eq!(large.files_touched, 101);
    // Lines follow the same shape.
    assert!(large.lines_added > 8 * small.lines_added);
}

#[test]
fn separated_file_count_is_scale_invariant() {
    assert_eq!(
        impact(3, true).files_touched,
        impact(100, true).files_touched
    );
}

#[test]
fn data_and_presentation_never_change() {
    let store = generated_museum(1, 10, 2, 5);
    let nav = museum_navigation();
    let v1 = separated_sources(&store, &nav, &paper_spec(AccessStructureKind::Index)).unwrap();
    let v2 = separated_sources(
        &store,
        &nav,
        &paper_spec(AccessStructureKind::IndexedGuidedTour),
    )
    .unwrap();
    let r = ImpactReport::between(&v1.to_file_map(), &v2.to_file_map());
    for f in r.files.iter() {
        if f.path != "links.xml" {
            assert_eq!(
                f.status,
                FileStatus::Unchanged,
                "{} must not change when only navigation changes",
                f.path
            );
        }
    }
}
