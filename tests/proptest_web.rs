//! Model-based property test: a navigation session's back/forward behaviour
//! must match a simple reference model under arbitrary action sequences.

use navsep::web::{NavigationSession, SessionError, Site, SiteHandler};
use navsep::xml::Document;
use proptest::prelude::*;

/// A ring site: page i links to page (i+1) % n with anchor text "next".
fn ring_site(n: usize) -> Site {
    let mut site = Site::new();
    for i in 0..n {
        let next = (i + 1) % n;
        site.put_page(
            format!("p{i}.html"),
            Document::parse(&format!(
                r#"<html><head><title>P{i}</title></head><body>
  <a href="p{next}.html">next</a>
</body></html>"#
            ))
            .expect("page parses"),
        );
    }
    site
}

#[derive(Debug, Clone)]
enum Action {
    FollowNext,
    Back,
    Forward,
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(Action::FollowNext),
            2 => Just(Action::Back),
            1 => Just(Action::Forward),
        ],
        0..40,
    )
}

/// The reference model of browser history.
struct Model {
    n: usize,
    current: usize,
    back: Vec<usize>,
    forward: Vec<usize>,
}

impl Model {
    fn follow_next(&mut self) {
        self.back.push(self.current);
        self.forward.clear();
        self.current = (self.current + 1) % self.n;
    }

    fn back(&mut self) -> bool {
        match self.back.pop() {
            Some(target) => {
                self.forward.push(self.current);
                self.current = target;
                true
            }
            None => false,
        }
    }

    fn forward(&mut self) -> bool {
        match self.forward.pop() {
            Some(target) => {
                self.back.push(self.current);
                self.current = target;
                true
            }
            None => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn session_history_matches_model(n in 2usize..6, script in actions()) {
        let mut session = NavigationSession::new(SiteHandler::new(ring_site(n)));
        session.visit("p0.html").unwrap();
        let mut model = Model { n, current: 0, back: Vec::new(), forward: Vec::new() };

        for action in &script {
            match action {
                Action::FollowNext => {
                    session.follow("next").unwrap();
                    model.follow_next();
                }
                Action::Back => {
                    let real = session.back();
                    let expected = model.back();
                    prop_assert_eq!(real.is_ok(), expected);
                    if let Err(e) = real {
                        prop_assert!(matches!(e, SessionError::HistoryExhausted(_)));
                    }
                }
                Action::Forward => {
                    let real = session.forward();
                    let expected = model.forward();
                    prop_assert_eq!(real.is_ok(), expected);
                }
            }
            // The invariant: session position equals the model's.
            let expected_path = format!("p{}.html", model.current);
            prop_assert_eq!(session.current_path(), Some(expected_path.as_str()));
            prop_assert_eq!(session.history().back_len(), model.back.len());
            prop_assert_eq!(session.history().forward_len(), model.forward.len());
        }
    }
}
