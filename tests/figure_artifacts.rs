//! Golden assertions for every figure of the paper (F1–F9 of DESIGN.md §4).

use navsep::core::museum::{museum_navigation, paper_museum, PICASSO_CONTEXT};
use navsep::core::spec::paper_spec;
use navsep::core::{diff_lines, separated_sources, tangled_site, weave_separated};
use navsep::hypermodel::{
    class_model_delta, index_class_model, indexed_guided_tour_class_model, AccessGraph,
    AccessStructureKind, Member, NavLinkKind,
};
use navsep::web::Site;
use navsep::xlink::Linkbase;

fn tangled(access: AccessStructureKind) -> Site {
    tangled_site(&paper_museum(), &museum_navigation(), &paper_spec(access)).unwrap()
}

fn sources(access: AccessStructureKind) -> Site {
    separated_sources(&paper_museum(), &museum_navigation(), &paper_spec(access)).unwrap()
}

fn page(site: &Site, path: &str) -> String {
    site.get(path).unwrap().document().unwrap().to_pretty_xml()
}

#[test]
fn f1_weaver_composes_multiple_concerns() {
    use navsep::aspect::{AdvicePosition, Aspect, Pointcut, Weaver};
    use navsep::xml::{Document, ElementBuilder};
    let base = Document::parse("<html><body><h1>x</h1></body></html>").unwrap();
    let weaver = Weaver::new()
        .aspect(Aspect::new("a").with_precedence(1).rule(
            Pointcut::parse(r#"element("body")"#).unwrap(),
            AdvicePosition::Append,
            vec![ElementBuilder::new("concern-a")],
        ))
        .aspect(Aspect::new("b").with_precedence(2).rule(
            Pointcut::parse(r#"element("body")"#).unwrap(),
            AdvicePosition::Append,
            vec![ElementBuilder::new("concern-b")],
        ));
    let (woven, report) = weaver.weave_page("p.html", &base).unwrap();
    let xml = woven.to_xml_string();
    assert!(xml.contains("<concern-a/><concern-b/>"));
    assert_eq!(report.applications(), 2);
}

#[test]
fn f2a_index_structure_topology() {
    let members: Vec<Member> = PICASSO_CONTEXT
        .iter()
        .map(|s| Member::new(*s, s.to_uppercase()))
        .collect();
    let g = AccessGraph::build(AccessStructureKind::Index, &members);
    // N entries from the index + N back-links.
    assert_eq!(g.outgoing_of_entry().len(), 3);
    assert!(g
        .outgoing_of_entry()
        .iter()
        .all(|l| l.kind == NavLinkKind::IndexEntry));
    for m in PICASSO_CONTEXT {
        assert_eq!(g.outgoing_of_member(m).len(), 1);
    }
}

#[test]
fn f2b_indexed_guided_tour_topology() {
    let members: Vec<Member> = PICASSO_CONTEXT
        .iter()
        .map(|s| Member::new(*s, s.to_uppercase()))
        .collect();
    let g = AccessGraph::build(AccessStructureKind::IndexedGuidedTour, &members);
    // Middle member gains Next + Previous on top of the Index links.
    let out = g.outgoing_of_member("guernica");
    assert_eq!(out.len(), 3);
    assert!(out.iter().any(|l| l.kind == NavLinkKind::Next));
    assert!(out.iter().any(|l| l.kind == NavLinkKind::Previous));
    assert!(out.iter().any(|l| l.kind == NavLinkKind::UpToIndex));
}

#[test]
fn f3_guitar_page_under_index() {
    let xml = page(&tangled(AccessStructureKind::Index), "guitar.html");
    assert!(xml.contains("<title>Guitar</title>"));
    assert!(xml.contains("<h1>Guitar</h1>"));
    assert!(xml.contains("museum.css"));
    assert!(xml.contains("rel=\"up\""));
    assert!(!xml.contains("rel=\"next\""));
}

#[test]
fn f4_guitar_page_gains_the_two_lines() {
    // The paper: the IGT version adds (apparently) two lines of HTML, and
    // every node of the context changes.
    let before = tangled(AccessStructureKind::Index);
    let after = tangled(AccessStructureKind::IndexedGuidedTour);
    for slug in PICASSO_CONTEXT {
        let path = format!("{slug}.html");
        let stats = diff_lines(&page(&before, &path), &page(&after, &path));
        assert!(stats.total() > 0, "{slug}: every context page must change");
        // The added navigation is small — one or two anchors per page.
        assert!(stats.added <= 3, "{slug}: {stats:?}");
    }
}

#[test]
fn f5_class_models() {
    let delta = class_model_delta();
    assert_eq!(delta, vec!["TourStop".to_string()]);
    assert!(index_class_model().to_text().contains("class Index"));
    assert!(indexed_guided_tour_class_model()
        .to_dot()
        .contains("TourStop"));
}

#[test]
fn f6_pipeline_produces_equivalent_site() {
    let woven = weave_separated(&sources(AccessStructureKind::IndexedGuidedTour)).unwrap();
    let baseline = tangled(AccessStructureKind::IndexedGuidedTour);
    navsep::core::assert_site_equivalent(&baseline, &woven.site).unwrap();
}

#[test]
fn f7_picasso_xml_is_pure_data() {
    let s = sources(AccessStructureKind::Index);
    let doc = s.get("picasso.xml").unwrap().document().unwrap();
    let xml = doc.to_xml_string();
    assert!(xml.contains("<name>Pablo Picasso</name>"));
    assert!(
        !xml.contains("href"),
        "data documents must contain no links"
    );
    assert!(!xml.contains("xlink"));
}

#[test]
fn f8_avignon_xml_contents() {
    let s = sources(AccessStructureKind::Index);
    let doc = s.get("avignon.xml").unwrap().document().unwrap();
    let root = doc.root_element().unwrap();
    assert_eq!(doc.name(root).unwrap().local(), "painting");
    assert_eq!(doc.attribute(root, "id"), Some("avignon"));
    assert_eq!(
        doc.text_content(doc.first_child_named(root, "title").unwrap()),
        "Les Demoiselles d'Avignon"
    );
    assert_eq!(
        doc.text_content(doc.first_child_named(root, "year").unwrap()),
        "1907"
    );
}

#[test]
fn f9_links_xml_holds_all_navigation() {
    let s = sources(AccessStructureKind::IndexedGuidedTour);
    let doc = s.get("links.xml").unwrap().document().unwrap();
    let lb = Linkbase::from_document(doc, "links.xml").unwrap();
    let traversals = lb.traversals().unwrap();
    // Picasso context (3 members): 3 entries + 3 ups + 1 start + 2 next +
    // 2 prev = 11; Braque context (1 member): 1 + 1 + 1 = 3.
    assert_eq!(traversals.len(), 14);
    // Every arcrole is a navsep navigation role.
    for t in &traversals {
        assert!(
            NavLinkKind::from_arcrole(t.arcrole.as_deref().unwrap()).is_some(),
            "{t:?}"
        );
    }
    // And the *data* documents referenced are exactly the context pages.
    let docs = lb.referenced_documents().unwrap();
    assert!(docs.contains(&"picasso.xml".to_string()));
    assert!(docs.contains(&"guitar.xml".to_string()));
}
